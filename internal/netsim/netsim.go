// Package netsim provides a deterministic simulated wide-area network for
// exercising fusion-query plans against "Internet" sources. The paper's cost
// model (Section 2.4) charges only for sending queries to sources and
// receiving answers; netsim turns those charges into measurable quantities —
// messages, bytes, and simulated elapsed time — without real sockets, so the
// experiments are reproducible.
//
// Each source is reached over a Link with its own latency, bandwidth and
// per-request overhead, mirroring the paper's heterogeneous-source setting.
package netsim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// ErrDown marks an exchange with a source whose link has been killed by a
// churn event: the endpoint is unreachable until a revive event restores it.
// The failure is transient from the mediator's perspective (source.IsTransient
// matches it), so retry and replica-failover machinery engages.
var ErrDown = errors.New("netsim: source down")

// Link models the path between the mediator and one source.
type Link struct {
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// BytesPerSec is the link throughput. Zero means infinite bandwidth.
	BytesPerSec float64
	// RequestOverhead is fixed per-request processing cost at the source
	// (connection setup, query parsing, optimization at the source).
	RequestOverhead time.Duration
	// JitterFrac adds deterministic pseudo-random jitter of up to this
	// fraction of the computed delay (0 disables jitter).
	JitterFrac float64
	// MaxConns is the number of concurrent exchanges the source sustains on
	// this link (its connection pool as seen from the mediator). Zero or one
	// means a single connection: exchanges are serviced one at a time. The
	// parallel executor bounds its per-source concurrency to this capacity,
	// and response-time accounting schedules a batch's exchanges over
	// MaxConns lanes (see Makespan).
	MaxConns int
}

// Conns returns the link's effective connection capacity (at least 1).
func (l Link) Conns() int {
	if l.MaxConns < 1 {
		return 1
	}
	return l.MaxConns
}

// DefaultLink returns a link resembling a late-90s Internet path: 80ms RTT,
// ~128KB/s, 20ms per-request overhead.
func DefaultLink() Link {
	return Link{
		Latency:         40 * time.Millisecond,
		BytesPerSec:     128 << 10,
		RequestOverhead: 20 * time.Millisecond,
	}
}

// TransferTime returns the simulated duration of a request/response exchange
// carrying reqBytes up and respBytes down, excluding jitter.
func (l Link) TransferTime(reqBytes, respBytes int) time.Duration {
	d := 2*l.Latency + l.RequestOverhead
	if l.BytesPerSec > 0 {
		d += time.Duration(float64(reqBytes+respBytes) / l.BytesPerSec * float64(time.Second))
	}
	return d
}

// Exchange is one recorded request/response over a link.
type Exchange struct {
	Source    string
	Kind      string // "sq", "sjq", "lq"
	ReqBytes  int
	RespBytes int
	Elapsed   time.Duration
}

// ChurnKind classifies a scripted churn event.
type ChurnKind string

// The churn event kinds: kill makes a source unreachable (exchanges fail
// with ErrDown), degrade replaces its link, revive restores the original
// link and reachability.
const (
	ChurnKill    ChurnKind = "kill"
	ChurnDegrade ChurnKind = "degrade"
	ChurnRevive  ChurnKind = "revive"
)

// ChurnEvent is one scripted change to a source's connectivity, fired when
// the network's accumulated simulated time first reaches At.
type ChurnEvent struct {
	// At is the simulated-time threshold: the event fires at the first
	// exchange attempted once total simulated time has reached At.
	At     time.Duration
	Source string
	Kind   ChurnKind
	// Link is the replacement link for degrade events; ignored otherwise.
	Link Link
}

// Network simulates the mediator's connectivity to all sources and records
// every exchange. It is safe for concurrent use so the parallel
// (response-time) executor can share it.
type Network struct {
	mu    sync.Mutex
	links map[string]Link
	rng   *rand.Rand
	log   []Exchange

	// realScale, when positive, makes every exchange take realScale × its
	// simulated duration of wall-clock time, so context deadlines bite.
	realScale float64

	// Scripted churn: events fire in At order as simulated time advances.
	// baseLinks snapshots the configuration at ScheduleChurn time so Reset
	// and revive events can restore it; down marks killed sources.
	churn      []ChurnEvent
	churnFired int
	baseLinks  map[string]Link
	down       map[string]bool

	totalBytes int
	totalTime  time.Duration
	messages   int
}

// NewNetwork creates an empty network; seed drives jitter determinism.
func NewNetwork(seed int64) *Network {
	return &Network{
		links: make(map[string]Link),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// SetLink installs or replaces the link to the named source.
func (n *Network) SetLink(source string, l Link) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[source] = l
}

// LinkFor returns the link to the named source, or DefaultLink if none was
// configured.
func (n *Network) LinkFor(source string) Link {
	n.mu.Lock()
	defer n.mu.Unlock()
	if l, ok := n.links[source]; ok {
		return l
	}
	return DefaultLink()
}

// ConnsFor returns the connection capacity of the link to the named source
// (1 when no link is configured, since DefaultLink has no pool).
func (n *Network) ConnsFor(source string) int {
	return n.LinkFor(source).Conns()
}

// Makespan returns the completion time of running the given exchange
// durations over k connections: each exchange is assigned, in order, to the
// connection that frees up earliest (greedy list scheduling). With k=1 this
// is the plain sum; with k lanes it is the critical path a source with a
// k-connection pool imposes on a batch of concurrently issued queries. It is
// the accounting counterpart of the executor's bounded per-source scheduler.
func Makespan(durations []time.Duration, k int) time.Duration {
	if len(durations) == 0 {
		return 0
	}
	if k < 1 {
		k = 1
	}
	if k == 1 {
		var sum time.Duration
		for _, d := range durations {
			sum += d
		}
		return sum
	}
	if k > len(durations) {
		k = len(durations)
	}
	// free[i] is when connection i next becomes idle; assign each exchange
	// to the earliest-free connection.
	free := make([]time.Duration, k)
	for _, d := range durations {
		min := 0
		for i := 1; i < k; i++ {
			if free[i] < free[min] {
				min = i
			}
		}
		free[min] += d
	}
	var max time.Duration
	for _, f := range free {
		if f > max {
			max = f
		}
	}
	return max
}

// ScheduleChurn installs a scripted churn sequence. Events fire in At order
// as the network's simulated time advances past each threshold; the current
// link configuration is snapshotted so revive events and Reset restore it.
// Reset re-arms the whole schedule, so a statistics-gathering pass that
// advances simulated time before execution does not consume the script.
func (n *Network) ScheduleChurn(events []ChurnEvent) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.churn = make([]ChurnEvent, len(events))
	copy(n.churn, events)
	sort.SliceStable(n.churn, func(i, j int) bool { return n.churn[i].At < n.churn[j].At })
	n.churnFired = 0
	n.baseLinks = make(map[string]Link, len(n.links))
	for name, l := range n.links {
		n.baseLinks[name] = l
	}
	n.down = make(map[string]bool)
}

// Down reports whether a kill event has made the named source unreachable.
func (n *Network) Down(source string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.down[source]
}

// applyChurnLocked fires every scheduled event whose threshold the simulated
// clock has reached. Callers hold n.mu.
func (n *Network) applyChurnLocked() {
	for n.churnFired < len(n.churn) && n.churn[n.churnFired].At <= n.totalTime {
		ev := n.churn[n.churnFired]
		n.churnFired++
		switch ev.Kind {
		case ChurnKill:
			n.down[ev.Source] = true
		case ChurnDegrade:
			n.links[ev.Source] = ev.Link
		case ChurnRevive:
			delete(n.down, ev.Source)
			if base, ok := n.baseLinks[ev.Source]; ok {
				n.links[ev.Source] = base
			}
		}
	}
}

// SetRealTime makes exchanges take wall-clock time: each exchange sleeps
// scale × its simulated duration before returning, so context deadlines and
// cancellation actually interrupt in-flight traffic. Zero (the default)
// keeps exchanges instantaneous — purely simulated time.
func (n *Network) SetRealTime(scale float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if scale < 0 {
		scale = 0
	}
	n.realScale = scale
}

// Exchange records a round trip to source carrying the given payload sizes
// and returns the simulated elapsed time for this exchange.
func (n *Network) Exchange(source, kind string, reqBytes, respBytes int) time.Duration {
	d, _ := n.ExchangeContext(context.Background(), source, kind, reqBytes, respBytes)
	return d
}

// ExchangeContext records a round trip like Exchange, honoring ctx: a
// cancelled or expired context aborts the exchange with ctx's error (wrapped
// so errors.Is sees context.Canceled / context.DeadlineExceeded). An
// exchange that was already in flight when the deadline hit stays recorded —
// the traffic was paid for — but its caller gets the error. In real-time
// mode (SetRealTime) the exchange sleeps its scaled duration and the
// deadline interrupts the sleep.
func (n *Network) ExchangeContext(ctx context.Context, source, kind string, reqBytes, respBytes int) (time.Duration, error) {
	if err := ctx.Err(); err != nil {
		return 0, fmt.Errorf("netsim: exchange with %s: %w", source, err)
	}
	n.mu.Lock()
	n.applyChurnLocked()
	if n.down[source] {
		n.mu.Unlock()
		// Connection refused: instantaneous, no traffic is paid for.
		return 0, fmt.Errorf("netsim: exchange with %s: %w", source, ErrDown)
	}
	l, ok := n.links[source]
	if !ok {
		l = DefaultLink()
	}
	d := l.TransferTime(reqBytes, respBytes)
	if l.JitterFrac > 0 {
		d += time.Duration(n.rng.Float64() * l.JitterFrac * float64(d))
	}
	n.log = append(n.log, Exchange{Source: source, Kind: kind, ReqBytes: reqBytes, RespBytes: respBytes, Elapsed: d})
	n.totalBytes += reqBytes + respBytes
	n.totalTime += d
	n.messages++
	scale := n.realScale
	n.mu.Unlock()

	if scale > 0 {
		timer := time.NewTimer(time.Duration(scale * float64(d)))
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-ctx.Done():
			return d, fmt.Errorf("netsim: exchange with %s: %w", source, ctx.Err())
		}
	}
	return d, nil
}

// Stats summarizes all traffic recorded so far.
type Stats struct {
	Messages   int
	TotalBytes int
	// TotalTime is the sum of exchange durations: the sequential-execution
	// "total work" the paper's cost model minimizes.
	TotalTime time.Duration
}

// Stats returns a snapshot of the accumulated traffic counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return Stats{Messages: n.messages, TotalBytes: n.totalBytes, TotalTime: n.totalTime}
}

// Log returns a copy of the recorded exchanges in order.
func (n *Network) Log() []Exchange {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Exchange, len(n.log))
	copy(out, n.log)
	return out
}

// Reset clears counters and the exchange log but keeps link configuration.
// Any scheduled churn is re-armed: links revert to their ScheduleChurn-time
// snapshot, killed sources come back, and the event script fires again as
// simulated time re-accumulates.
func (n *Network) Reset() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.log = nil
	n.totalBytes = 0
	n.totalTime = 0
	n.messages = 0
	if n.churn != nil {
		n.churnFired = 0
		for name, l := range n.baseLinks {
			n.links[name] = l
		}
		n.down = make(map[string]bool)
	}
}

// String renders the aggregate counters.
func (s Stats) String() string {
	return fmt.Sprintf("%d msgs, %d bytes, %v total", s.Messages, s.TotalBytes, s.TotalTime)
}
