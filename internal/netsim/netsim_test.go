package netsim

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestTransferTime(t *testing.T) {
	l := Link{Latency: 40 * time.Millisecond, BytesPerSec: 1000, RequestOverhead: 20 * time.Millisecond}
	// 2*40ms + 20ms + 500 bytes / 1000 Bps = 100ms + 500ms
	got := l.TransferTime(200, 300)
	if want := 600 * time.Millisecond; got != want {
		t.Fatalf("TransferTime = %v, want %v", got, want)
	}
}

func TestTransferTimeInfiniteBandwidth(t *testing.T) {
	l := Link{Latency: 10 * time.Millisecond}
	if got := l.TransferTime(1<<20, 1<<20); got != 20*time.Millisecond {
		t.Fatalf("TransferTime = %v, want 20ms", got)
	}
}

func TestExchangeAccounting(t *testing.T) {
	n := NewNetwork(42)
	n.SetLink("R1", Link{Latency: time.Millisecond})
	n.Exchange("R1", "sq", 100, 200)
	n.Exchange("R1", "sjq", 50, 10)
	s := n.Stats()
	if s.Messages != 2 {
		t.Fatalf("Messages = %d, want 2", s.Messages)
	}
	if s.TotalBytes != 360 {
		t.Fatalf("TotalBytes = %d, want 360", s.TotalBytes)
	}
	if s.TotalTime <= 0 {
		t.Fatal("TotalTime should be positive")
	}
	log := n.Log()
	if len(log) != 2 || log[0].Kind != "sq" || log[1].Kind != "sjq" {
		t.Fatalf("Log = %+v", log)
	}
}

func TestExchangeUsesDefaultLink(t *testing.T) {
	n := NewNetwork(1)
	d := n.Exchange("unknown", "sq", 0, 0)
	def := DefaultLink()
	if want := def.TransferTime(0, 0); d != want {
		t.Fatalf("default exchange = %v, want %v", d, want)
	}
	if got := n.LinkFor("unknown"); got != def {
		t.Fatalf("LinkFor(unknown) = %+v, want default", got)
	}
}

func TestJitterDeterminism(t *testing.T) {
	run := func() []time.Duration {
		n := NewNetwork(7)
		n.SetLink("R1", Link{Latency: 10 * time.Millisecond, JitterFrac: 0.5})
		var ds []time.Duration
		for i := 0; i < 5; i++ {
			ds = append(ds, n.Exchange("R1", "sq", 10, 10))
		}
		return ds
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("jitter not deterministic: %v vs %v", a, b)
		}
	}
	base := Link{Latency: 10 * time.Millisecond}.TransferTime(10, 10)
	for _, d := range a {
		if d < base || d > base+base/2 {
			t.Fatalf("jittered duration %v outside [base, 1.5*base] = [%v, %v]", d, base, base+base/2)
		}
	}
}

func TestReset(t *testing.T) {
	n := NewNetwork(1)
	n.SetLink("R1", Link{Latency: time.Millisecond})
	n.Exchange("R1", "sq", 1, 1)
	n.Reset()
	if s := n.Stats(); s.Messages != 0 || s.TotalBytes != 0 || s.TotalTime != 0 {
		t.Fatalf("Stats after Reset = %+v", s)
	}
	if len(n.Log()) != 0 {
		t.Fatal("Log should be empty after Reset")
	}
	// Link config survives reset.
	if n.LinkFor("R1").Latency != time.Millisecond {
		t.Fatal("link config should survive Reset")
	}
}

func TestConcurrentExchanges(t *testing.T) {
	n := NewNetwork(1)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				n.Exchange("R1", "sq", 10, 10)
			}
		}()
	}
	wg.Wait()
	if s := n.Stats(); s.Messages != 800 {
		t.Fatalf("Messages = %d, want 800", s.Messages)
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{Messages: 3, TotalBytes: 120, TotalTime: time.Second}
	if got := s.String(); got != "3 msgs, 120 bytes, 1s total" {
		t.Fatalf("String() = %q", got)
	}
}

func TestPropTransferTimeMonotoneInBytes(t *testing.T) {
	l := DefaultLink()
	f := func(a, b uint16) bool {
		x, y := int(a), int(a)+int(b)
		return l.TransferTime(x, 0) <= l.TransferTime(y, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// The cost model requires subadditivity: sending Y∪Z in one exchange costs
// no more than sending Y and Z separately (Section 2.4). The fixed per-
// exchange overhead makes it strictly cheaper whenever overhead is nonzero.
func TestPropExchangeSubadditive(t *testing.T) {
	l := DefaultLink()
	f := func(y, z uint16) bool {
		whole := l.TransferTime(int(y)+int(z), 0)
		parts := l.TransferTime(int(y), 0) + l.TransferTime(int(z), 0)
		return whole <= parts
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMakespan(t *testing.T) {
	durs := []time.Duration{4 * time.Second, 3 * time.Second, 2 * time.Second, 1 * time.Second}
	cases := []struct {
		k    int
		want time.Duration
	}{
		{0, 10 * time.Second}, // k<1 behaves like a single connection
		{1, 10 * time.Second},
		{2, 5 * time.Second},  // lanes: [4,1] and [3,2]
		{4, 4 * time.Second},  // one lane per exchange: the longest wins
		{99, 4 * time.Second}, // extra lanes beyond the exchanges are idle
	}
	for _, c := range cases {
		if got := Makespan(durs, c.k); got != c.want {
			t.Errorf("Makespan(k=%d) = %v, want %v", c.k, got, c.want)
		}
	}
	if got := Makespan(nil, 3); got != 0 {
		t.Errorf("Makespan(nil) = %v, want 0", got)
	}
}

func TestMakespanNeverBelowParallelBound(t *testing.T) {
	// Property: sum/k <= makespan <= sum, and makespan >= max duration.
	durs := []time.Duration{7, 2, 9, 4, 4, 1, 12, 3}
	var sum, max time.Duration
	for _, d := range durs {
		sum += d
		if d > max {
			max = d
		}
	}
	for k := 1; k <= len(durs)+1; k++ {
		got := Makespan(durs, k)
		if got > sum || got < max || got < sum/time.Duration(k) {
			t.Errorf("Makespan(k=%d) = %v out of bounds [max %v, sum %v]", k, got, max, sum)
		}
	}
}

func TestLinkConnsAndConnsFor(t *testing.T) {
	if (Link{}).Conns() != 1 || (Link{MaxConns: 4}).Conns() != 4 {
		t.Fatal("Link.Conns clamp broken")
	}
	n := NewNetwork(1)
	if got := n.ConnsFor("R1"); got != 1 {
		t.Fatalf("default ConnsFor = %d, want 1", got)
	}
	l := DefaultLink()
	l.MaxConns = 6
	n.SetLink("R1", l)
	if got := n.ConnsFor("R1"); got != 6 {
		t.Fatalf("ConnsFor = %d, want 6", got)
	}
}
