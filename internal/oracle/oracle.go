// Package oracle implements a seeded, reproducible property-based testing
// subsystem for the fusion-query pipeline: a differential plan-equivalence
// oracle in the spirit of SQLancer-style query-engine oracles and
// Jepsen-style fault sweeps.
//
// The paper's central semantic claim is that every plan class — FILTER, SJ,
// SJA, postoptimized SJA+, the greedy variants, and the join-over-union
// baseline — computes the same answer set; the classes differ only in cost.
// The oracle earns that claim across the input space instead of on
// hand-built examples: a generator draws random universes (overlapping
// sources, skew, capability mixes, heterogeneous links, flaky decorators), a
// naive reference executor computes ground truth directly from the raw
// relations, and a differential driver runs every plan class through the
// real executor — sequentially and in parallel, cached and uncached, with
// and without injected faults and deadlines — checking:
//
//   - answer equality: every successful execution returns exactly the
//     reference answer, byte for byte;
//   - honest partials: a failed or cancelled run reports an error that
//     classifies the cause (transient, cancellation, deadline) and never a
//     wrong non-empty answer;
//   - cost-model invariants: algorithm bookkeeping equals the shared
//     estimator, SJA is no costlier than SJ and FILTER and no greedy
//     variant beats it, SJA+ is no costlier than SJA, and on small
//     instances SJA matches the exhaustive optimum;
//   - execution-accounting identities: sequential response time equals
//     total work, parallel response time never exceeds it;
//   - observability balance: every started span ends, per-source metric
//     sums equal the executor's counters, and scheduler gauges drain to
//     zero.
//
// Everything is derived from one seed, so any failure reproduces verbatim;
// a greedy shrinker reduces failing instances to minimal form.
package oracle

import (
	"encoding/json"
	"fmt"

	"fusionq/internal/source"
	"fusionq/internal/workload"
)

// Capability tiers a generated source can be assigned. The tier fixes both
// the wrapper capabilities and the cost model's semijoin support.
const (
	// TierNative supports native semijoins and passed bindings.
	TierNative = iota
	// TierBloom additionally accepts Bloom-filter semijoins.
	TierBloom
	// TierEmulated supports only passed-binding selections: semijoins are
	// emulated one item at a time.
	TierEmulated
	// TierNone supports only plain selections (and loads).
	TierNone
	numTiers
)

// Instance is one fully self-describing oracle test case. Every field is
// derived from a single seed by Generate, and the whole struct round-trips
// through JSON, so a failing instance can be reprinted, shrunk, and rerun
// verbatim.
type Instance struct {
	// Seed drives every random choice made while materializing the
	// instance: the synthetic data, the failure injection sequence, and the
	// network jitter stream.
	Seed int64 `json:"seed"`

	// Workload shape (see workload.SynthConfig).
	NumSources      int       `json:"numSources"`
	TuplesPerSource int       `json:"tuplesPerSource"`
	Universe        int       `json:"universe"`
	Selectivity     []float64 `json:"selectivity"`
	Backend         int       `json:"backend"`
	Zipf            bool      `json:"zipf,omitempty"`
	Correlation     float64   `json:"correlation,omitempty"`
	PayloadBytes    int       `json:"payloadBytes,omitempty"`

	// Per-source capability tier (Tier* constants) and link shape.
	CapTiers  []int `json:"capTiers"`
	LatencyUS []int `json:"latencyUs"`
	MaxConns  []int `json:"maxConns"`

	// Sweeps enabled for this instance.
	Parallel  bool    `json:"parallel,omitempty"`
	CacheRuns bool    `json:"cacheRuns,omitempty"`
	Faults    bool    `json:"faults,omitempty"`
	FaultRate float64 `json:"faultRate,omitempty"`
	Retries   int     `json:"retries"`
	Deadline  bool    `json:"deadline,omitempty"`
	// Replicate puts the first source behind a two-replica fabric logical
	// and runs the churn sweep: a scripted kill takes down one replica
	// (ChurnKillAll false — the run must still return the exact answer) or
	// both (ChurnKillAll true — the run must fail with a classified
	// exhaustion and never a wrong non-empty answer).
	Replicate    bool `json:"replicate,omitempty"`
	ChurnKillAll bool `json:"churnKillAll,omitempty"`
	// WireTrace serves the sources over real loopback wire servers and runs
	// the trace-completeness sweep: every exchange must leave a grafted,
	// skew-normalized server fragment in the trace, and the fragments' byte
	// counts must reconcile with the servers' fq_wire_bytes_* counters.
	WireTrace bool `json:"wireTrace,omitempty"`
	// PlanCache runs the plan-cache coherence sweep: the sources go behind
	// a real mediator and the service's epoch-keyed plan cache, and cached
	// plans must answer exactly like fresh ones before and after scripted
	// roster churn — with stale plans never served and never executed
	// (core.ErrStalePlan). Skipped on single-source instances, where churn
	// would empty the roster.
	PlanCache bool `json:"planCache,omitempty"`
}

// JSON renders the instance as indented JSON — the repro artifact format of
// the test harness and cmd/fqoracle.
func (in Instance) JSON() string {
	b, err := json.MarshalIndent(in, "", "  ")
	if err != nil {
		return fmt.Sprintf("{"+`"marshal error": %q`+"}", err.Error())
	}
	return string(b)
}

// ReproCommand returns the go test invocation that replays exactly this
// instance.
func (in Instance) ReproCommand() string {
	return fmt.Sprintf("go test ./internal/oracle -run 'TestOracle$' -oracle.seed=%d -oracle.n=1", in.Seed)
}

// synthConfig translates the instance into the workload generator's
// configuration.
func (in Instance) synthConfig() workload.SynthConfig {
	caps := make([]source.Capabilities, len(in.CapTiers))
	for j, tier := range in.CapTiers {
		caps[j] = capsForTier(tier)
	}
	return workload.SynthConfig{
		Seed:            in.Seed,
		NumSources:      in.NumSources,
		TuplesPerSource: in.TuplesPerSource,
		Universe:        in.Universe,
		Selectivity:     append([]float64(nil), in.Selectivity...),
		Backend:         workload.BackendKind(in.Backend),
		Caps:            caps,
		Zipf:            in.Zipf,
		PayloadBytes:    in.PayloadBytes,
		Correlation:     in.Correlation,
	}
}

// capsForTier maps a capability tier to wrapper capabilities.
func capsForTier(tier int) source.Capabilities {
	switch tier {
	case TierBloom:
		return source.Capabilities{NativeSemijoin: true, PassedBindings: true, BloomSemijoin: true}
	case TierEmulated:
		return source.Capabilities{PassedBindings: true}
	case TierNone:
		return source.Capabilities{}
	default:
		return source.Capabilities{NativeSemijoin: true, PassedBindings: true}
	}
}

// Failure is one property violation found while checking an instance.
type Failure struct {
	// Property names the violated invariant: "answer-mismatch",
	// "partial-dishonest", "error-class", "cost-bookkeeping",
	// "cost-dominance", "seq-identity", "par-response", "span-unfinished",
	// "metric-imbalance", "gauge-leak", "cache-reuse", "optimize-error",
	// "exec-error", "wire-frag-missing", "wire-frag-nesting",
	// "wire-bytes-mismatch", "plan-cache-coherence".
	Property string `json:"property"`
	// Class is the plan class involved ("filter", "sja+", "jou", ...).
	Class string `json:"class,omitempty"`
	// Mode is the execution mode ("seq", "par", "cached", "faults",
	// "deadline"), empty for planning-time properties.
	Mode string `json:"mode,omitempty"`
	// Detail is a human-readable account of the violation.
	Detail string `json:"detail"`
}

// String renders the failure on one line.
func (f Failure) String() string {
	s := f.Property
	if f.Class != "" {
		s += " [" + f.Class
		if f.Mode != "" {
			s += "/" + f.Mode
		}
		s += "]"
	} else if f.Mode != "" {
		s += " [" + f.Mode + "]"
	}
	return s + ": " + f.Detail
}

// properties returns the distinct property names of a failure list.
func properties(fs []Failure) map[string]bool {
	out := map[string]bool{}
	for _, f := range fs {
		out[f.Property] = true
	}
	return out
}
