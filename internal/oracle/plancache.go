package oracle

import (
	"context"
	"errors"
	"fmt"

	"fusionq/internal/core"
	"fusionq/internal/obs"
	"fusionq/internal/service"
	"fusionq/internal/workload"
)

// checkPlanCache is the plan-cache coherence sweep: the instance's sources
// go behind a real mediator and the service's epoch-keyed plan cache, and
// the sweep verifies the cache's three promises around scripted roster
// churn:
//
//   - plan-cache-coherence/warm: a same-epoch cached plan, executed through
//     core.QueryPlannedContext, returns exactly the reference answer — and
//     so does a fresh plan-and-execute run of the same query;
//   - plan-cache-coherence/churn: after the first source is removed from
//     the roster (the scripted churn event), the old-epoch entry is never
//     served, and executing the stale plan directly fails with
//     core.ErrStalePlan before any source traffic;
//   - plan-cache-coherence/post-churn: a re-planned, re-cached query at the
//     new epoch answers exactly the survivors-only reference, computed
//     naively from the remaining relations.
//
// Instances with a single source are skipped: churn would empty the roster
// and there would be no post-churn query to check.
func (d *Driver) checkPlanCache(ctx context.Context, ev *env) []Failure {
	if len(ev.sc.Sources) < 2 {
		return nil
	}
	infra := func(stage string, err error) []Failure {
		return []Failure{{Property: "exec-error", Class: "plan-cache", Mode: stage, Detail: err.Error()}}
	}
	m := core.New(ev.sc.Schema)
	m.SetNetwork(ev.network)
	m.SetMetrics(obs.NewRegistry())
	for j, src := range ev.sources {
		if err := m.AddSource(src, ev.profiles[j]); err != nil {
			return infra("add-source", err)
		}
	}
	pc := service.NewPlanCache(8, obs.NewRegistry())
	conds := ev.sc.Conds
	key := service.QueryKey(conds, core.AlgoSJAPlus)
	opts := core.Options{}

	res, err := m.Plan(ctx, conds, opts)
	if err != nil {
		return infra("plan", err)
	}
	epoch := m.Epoch()
	pc.Put(key, epoch, res)

	var fs []Failure
	cached, ok := pc.Get(key, epoch)
	if !ok {
		return []Failure{{Property: "plan-cache-coherence", Mode: "warm", Detail: "same-epoch entry missed"}}
	}
	warm, err := m.QueryPlannedContext(ctx, conds, cached, opts)
	if err != nil {
		return append(fs, infra("warm-exec", err)...)
	}
	if !warm.Items.Equal(ev.ref) {
		fs = append(fs, Failure{Property: "answer-mismatch", Class: "plan-cache", Mode: "warm",
			Detail: answerDiff(warm.Items, ev.ref)})
	}
	fresh, err := m.QueryCondsContext(ctx, conds, opts)
	if err != nil {
		return append(fs, infra("fresh-exec", err)...)
	}
	if !fresh.Items.Equal(ev.ref) {
		fs = append(fs, Failure{Property: "answer-mismatch", Class: "plan-cache", Mode: "fresh",
			Detail: answerDiff(fresh.Items, ev.ref)})
	}

	// Scripted churn: the first source leaves the roster, moving the epoch.
	dead := ev.sc.SourceNames()[0]
	if !m.RemoveSource(dead) {
		return append(fs, infra("churn", fmt.Errorf("RemoveSource(%s) found nothing", dead))...)
	}
	if _, ok := pc.Get(key, m.Epoch()); ok {
		fs = append(fs, Failure{Property: "plan-cache-coherence", Mode: "churn",
			Detail: "stale-epoch plan served after roster churn"})
	}
	if _, err := m.QueryPlannedContext(ctx, conds, res, opts); !errors.Is(err, core.ErrStalePlan) {
		fs = append(fs, Failure{Property: "plan-cache-coherence", Mode: "churn",
			Detail: fmt.Sprintf("stale plan executed against the shrunk roster: err=%v, want core.ErrStalePlan", err)})
	}

	// Post-churn: re-plan, re-cache, and compare against the ground truth
	// of the surviving sources only.
	surv := &workload.Scenario{
		Schema:    ev.sc.Schema,
		Conds:     conds,
		Sources:   ev.sc.Sources[1:],
		Relations: ev.sc.Relations[1:],
	}
	survRef, err := ReferenceAnswer(surv)
	if err != nil {
		return append(fs, infra("post-churn-reference", err)...)
	}
	res2, err := m.Plan(ctx, conds, opts)
	if err != nil {
		return append(fs, infra("post-churn-plan", err)...)
	}
	pc.Put(key, m.Epoch(), res2)
	cached2, ok := pc.Get(key, m.Epoch())
	if !ok {
		return append(fs, Failure{Property: "plan-cache-coherence", Mode: "post-churn",
			Detail: "re-cached plan missed at its own epoch"})
	}
	after, err := m.QueryPlannedContext(ctx, conds, cached2, opts)
	if err != nil {
		return append(fs, infra("post-churn-exec", err)...)
	}
	if !after.Items.Equal(survRef) {
		fs = append(fs, Failure{Property: "answer-mismatch", Class: "plan-cache", Mode: "post-churn",
			Detail: answerDiff(after.Items, survRef)})
	}
	return fs
}
