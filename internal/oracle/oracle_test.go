package oracle

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"fusionq/internal/set"
	"fusionq/internal/workload"
)

// The oracle's knobs: -oracle.n sets how many instances each property run
// draws, -oracle.seed sets the single master seed every random choice flows
// from. Instance i uses seed oracle.seed+i, so any failure reproduces with
// -oracle.seed=<printed seed> -oracle.n=1.
var (
	oracleN    = flag.Int("oracle.n", 120, "oracle instances per run")
	oracleSeed = flag.Int64("oracle.seed", 1, "master seed; instance i uses seed+i")
)

// TestOracle is the main differential property run: every plan class must
// agree with the reference executor on every generated instance, under
// every enabled execution mode, with balanced observability and a sound
// cost model.
func TestOracle(t *testing.T) {
	n := *oracleN
	if testing.Short() && n > 25 {
		n = 25
	}
	d := &Driver{}
	ctx := context.Background()
	for i := 0; i < n; i++ {
		seed := *oracleSeed + int64(i)
		inst := Generate(seed)
		fs, err := d.Check(ctx, inst)
		if err != nil {
			t.Fatalf("oracle.seed=%d: instance could not be built: %v\nrepro: %s", seed, err, inst.ReproCommand())
		}
		if len(fs) > 0 {
			reportFailures(t, d, inst, fs)
		}
	}
}

// reportFailures shrinks a failing instance and fails the test with the
// seed, every violated property, the minimal instance JSON and the verbatim
// repro command.
func reportFailures(t *testing.T, d *Driver, inst Instance, fs []Failure) {
	t.Helper()
	minInst, minFails := d.Shrink(context.Background(), inst, fs, 0)
	var b strings.Builder
	fmt.Fprintf(&b, "oracle failure at seed %d (%d violations):\n", inst.Seed, len(fs))
	for _, f := range fs {
		fmt.Fprintf(&b, "  - %s\n", f)
	}
	fmt.Fprintf(&b, "shrunk to minimal instance (%d violations):\n", len(minFails))
	for _, f := range minFails {
		fmt.Fprintf(&b, "  - %s\n", f)
	}
	fmt.Fprintf(&b, "%s\n", minInst.JSON())
	fmt.Fprintf(&b, "repro: %s\n", inst.ReproCommand())
	t.Fatal(b.String())
}

// TestGenerateDeterministic pins the single-seed reproducibility contract:
// the same seed must always yield the identical instance, and checking it
// twice must yield the same verdict.
func TestGenerateDeterministic(t *testing.T) {
	for _, seed := range []int64{1, 7, 99, 4242} {
		a, b := Generate(seed), Generate(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: Generate is not deterministic:\n%s\nvs\n%s", seed, a.JSON(), b.JSON())
		}
	}
	d := &Driver{}
	ctx := context.Background()
	inst := Generate(*oracleSeed)
	fs1, err1 := d.Check(ctx, inst)
	fs2, err2 := d.Check(ctx, inst)
	if (err1 == nil) != (err2 == nil) || len(fs1) != len(fs2) {
		t.Fatalf("seed %d: Check is not deterministic: %d/%v vs %d/%v", inst.Seed, len(fs1), err1, len(fs2), err2)
	}
}

// TestOracleCatchesMutation proves the oracle has teeth: a deliberately
// seeded answer-corrupting mutation (the Driver's test hook) must be caught
// as an answer mismatch and shrunk to a minimal instance that still fails.
func TestOracleCatchesMutation(t *testing.T) {
	d := &Driver{
		MutateClass: "sja+",
		Mutate: func(s set.Set) set.Set {
			if s.IsEmpty() {
				return set.New("BOGUS")
			}
			return set.New(s.Items()[:s.Len()-1]...)
		},
	}
	ctx := context.Background()
	inst := Generate(*oracleSeed)
	fs, err := d.Check(ctx, inst)
	if err != nil {
		t.Fatalf("instance build failed: %v", err)
	}
	if !hasProperty(fs, "answer-mismatch") {
		t.Fatalf("seeded answer corruption in class %q was not caught; failures: %v", d.MutateClass, fs)
	}

	minInst, minFails := d.Shrink(ctx, inst, fs, 0)
	if !hasProperty(minFails, "answer-mismatch") {
		t.Fatalf("shrunk instance no longer reproduces the mismatch: %v", minFails)
	}
	if minInst.NumSources > inst.NumSources || len(minInst.Selectivity) > len(inst.Selectivity) ||
		minInst.TuplesPerSource > inst.TuplesPerSource || minInst.Universe > inst.Universe {
		t.Fatalf("shrinker grew the instance:\noriginal %s\nshrunk %s", inst.JSON(), minInst.JSON())
	}
	// The mutation survives every feature removal, so the shrinker should
	// strip the instance to its structural core.
	if minInst.Faults || minInst.Deadline || minInst.Parallel || minInst.CacheRuns || minInst.Zipf {
		t.Fatalf("shrinker left removable features enabled: %s", minInst.JSON())
	}
	t.Logf("mutation caught and shrunk: %d sources, %d conds, %d tuples, %d items",
		minInst.NumSources, len(minInst.Selectivity), minInst.TuplesPerSource, minInst.Universe)
}

// TestReferenceAnswerDMV pins the reference executor itself against the
// paper's worked Figure 1 example, whose answer is {J55, T21}.
func TestReferenceAnswerDMV(t *testing.T) {
	ref, err := ReferenceAnswer(workload.DMV())
	if err != nil {
		t.Fatal(err)
	}
	if want := set.New("J55", "T21"); !ref.Equal(want) {
		t.Fatalf("reference answer %v, want %v", ref, want)
	}
}

// TestInstanceJSONRoundTrip ensures the repro artifact format is lossless.
func TestInstanceJSONRoundTrip(t *testing.T) {
	inst := Generate(17)
	var back Instance
	if err := json.Unmarshal([]byte(inst.JSON()), &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(inst, back) {
		t.Fatalf("JSON round trip lost data:\n%s\nvs\n%s", inst.JSON(), back.JSON())
	}
}

func hasProperty(fs []Failure, prop string) bool {
	for _, f := range fs {
		if f.Property == prop {
			return true
		}
	}
	return false
}
