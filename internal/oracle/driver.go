package oracle

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"fusionq/internal/bloom"
	"fusionq/internal/exec"
	"fusionq/internal/fabric"
	"fusionq/internal/netsim"
	"fusionq/internal/obs"
	"fusionq/internal/optimizer"
	"fusionq/internal/plan"
	"fusionq/internal/set"
	"fusionq/internal/source"
	"fusionq/internal/stats"
	"fusionq/internal/workload"
)

// exhaustiveGate bounds the brute-force plan count the per-instance
// exhaustive cross-check is willing to enumerate.
const exhaustiveGate = 5000

// realTimeScale converts simulated seconds to wall-clock seconds during the
// deadline sweep: small enough that a sweep costs milliseconds, large
// enough that a context deadline interrupts mid-exchange.
const realTimeScale = 0.05

// Driver checks generated instances against the oracle's properties.
// The zero value is the production configuration.
type Driver struct {
	// Mutate, when non-nil, corrupts the executed answer of plan class
	// MutateClass before comparison — a deliberate bug injection used by
	// the tests to prove the oracle actually catches answer divergence and
	// by the shrinker self-test. Never set outside tests.
	MutateClass string
	Mutate      func(set.Set) set.Set

	// Recorder, when non-nil, receives every plan execution as a flight-
	// recorder entry (Begin/End around each run, trace attached), so a soak
	// leaves a tail-retained artifact of what it executed — errors and slow
	// runs kept, boring runs sampled. cmd/fqoracle dumps it with -flight.
	Recorder *obs.Recorder
}

// planClass is one optimizer entry point under differential test.
type planClass struct {
	name string
	opt  func(*optimizer.Problem) (optimizer.Result, error)
}

// planClasses lists every plan class the driver executes. rt-sja optimizes
// response time rather than total work, so its Result.Cost lives outside
// the total-work dominance chain but its plan must still compute the same
// answer.
func planClasses() []planClass {
	return []planClass{
		{"filter", optimizer.Filter},
		{"sj", optimizer.SJ},
		{"sja", optimizer.SJA},
		{"sja+", optimizer.SJAPlus},
		{"greedy-sj", optimizer.GreedySJ},
		{"greedy-sja", optimizer.GreedySJA},
		{"greedy-adaptive-sja", optimizer.GreedyAdaptiveSJA},
		{"greedy-sja+", optimizer.GreedySJAPlus},
		{"rt-sja", optimizer.ResponseTimeSJA},
	}
}

// env is one materialized instance: scenario, network, instrumented
// sources, cost table and reference answer.
type env struct {
	inst     Instance
	sc       *workload.Scenario
	network  *netsim.Network
	sources  []source.Source
	profiles []stats.SourceProfile
	pr       *optimizer.Problem
	ref      set.Set
}

// buildEnv materializes the instance. An error here means the instance
// could not even be constructed — an infrastructure problem, not a property
// violation.
func buildEnv(ctx context.Context, inst Instance) (*env, error) {
	sc, err := workload.Synth(inst.synthConfig())
	if err != nil {
		return nil, fmt.Errorf("oracle: synth: %w", err)
	}
	ref, err := ReferenceAnswer(sc)
	if err != nil {
		return nil, err
	}
	network := netsim.NewNetwork(inst.Seed + 1)
	srcs := make([]source.Source, len(sc.Sources))
	profiles := make([]stats.SourceProfile, len(sc.Sources))
	for j, raw := range sc.Sources {
		link := netsim.Link{
			Latency:         time.Duration(inst.LatencyUS[j]) * time.Microsecond,
			BytesPerSec:     1 << 20,
			RequestOverhead: 100 * time.Microsecond,
			MaxConns:        inst.MaxConns[j],
		}
		network.SetLink(raw.Name(), link)
		srcs[j] = source.Instrument(raw, network)
		// Items are the 8-byte "ID%06d" strings of the synthetic workload.
		prof := stats.ProfileFromLink(raw.Name(), link, 8, stats.SupportOf(raw.Caps()))
		if raw.Caps().BloomSemijoin {
			prof.BloomBitsPerItem = bloom.DefaultBitsPerItem
		}
		profiles[j] = prof
	}
	table, err := stats.BuildFromSources(ctx, sc.Conds, srcs, profiles)
	if err != nil {
		return nil, fmt.Errorf("oracle: stats: %w", err)
	}
	network.Reset()
	return &env{
		inst:     inst,
		sc:       sc,
		network:  network,
		sources:  srcs,
		profiles: profiles,
		pr:       &optimizer.Problem{Conds: sc.Conds, Sources: sc.SourceNames(), Table: table},
		ref:      ref,
	}, nil
}

// Check materializes the instance and verifies every oracle property,
// returning all violations found (empty means the instance passes). The
// returned error reports an infrastructure failure only.
func (d *Driver) Check(ctx context.Context, inst Instance) ([]Failure, error) {
	ev, err := buildEnv(ctx, inst)
	if err != nil {
		return nil, err
	}
	var fs []Failure

	// Phase 1: optimize every class and check the cost model.
	results := map[string]optimizer.Result{}
	for _, pc := range planClasses() {
		r, err := pc.opt(ev.pr)
		if err != nil {
			fs = append(fs, Failure{Property: "optimize-error", Class: pc.name, Detail: err.Error()})
			continue
		}
		results[pc.name] = r
	}
	fs = append(fs, checkCosts(ev, results)...)

	// Phase 2: execute every class sequentially, uncached and faultless.
	// These runs must succeed and agree with the reference byte for byte.
	for _, pc := range planClasses() {
		r, ok := results[pc.name]
		if !ok {
			continue
		}
		fs = append(fs, d.runPlan(ctx, ev, ev.sources, pc.name, r.Plan, runOpts{mode: "seq"})...)
	}

	// Phase 3: parallel execution of every class.
	if inst.Parallel {
		for _, pc := range planClasses() {
			r, ok := results[pc.name]
			if !ok {
				continue
			}
			fs = append(fs, d.runPlan(ctx, ev, ev.sources, pc.name, r.Plan, runOpts{mode: "par", parallel: true})...)
		}
	}

	// Phase 3b: streaming execution of every class. The batch size varies
	// with the seed so tiny batches (many edges, heavy fan-out traffic) and
	// large ones (single-batch degenerate case) are both exercised. The
	// streaming answer must agree with the reference — and therefore with
	// every materialized run — byte for byte.
	batch := []int{4, 16, 64, 512}[int(inst.Seed&3)]
	for _, pc := range planClasses() {
		r, ok := results[pc.name]
		if !ok {
			continue
		}
		fs = append(fs, d.runPlan(ctx, ev, ev.sources, pc.name, r.Plan, runOpts{mode: "stream", streaming: true, batch: batch})...)
	}

	// Phase 4: answer-cache reuse across repeated runs.
	if inst.CacheRuns {
		fs = append(fs, d.checkCacheReuse(ctx, ev, results)...)
	}

	// Phase 5: the join-over-union baseline, memoized and not.
	fs = append(fs, d.checkJoinOverUnion(ctx, ev)...)

	// Phase 6: fault sweep — flaky sources with a retry budget. Runs are
	// sequential so the injected failure sequence is deterministic.
	if inst.Faults {
		fs = append(fs, d.checkFaults(ctx, ev, results)...)
	}

	// Phase 7: deadline sweep — real-time exchanges under a tight context
	// deadline must yield an honestly-classified error or the exact answer.
	if inst.Deadline {
		fs = append(fs, d.checkDeadline(ctx, ev, results)...)
	}

	// Phase 8: replica churn sweep — the first source goes behind a
	// two-replica fabric logical and scripted churn kills one or both
	// replicas.
	if inst.Replicate {
		fs = append(fs, d.checkChurn(ctx, ev, results)...)
	}

	// Phase 9: wire trace-completeness sweep — the sources go behind real
	// loopback wire servers and every exchange must leave a grafted,
	// skew-normalized, byte-reconciled server fragment in the trace.
	if inst.WireTrace {
		fs = append(fs, d.checkWireTrace(ctx, ev, results)...)
	}

	// Phase 10: plan-cache coherence sweep — the sources go behind a real
	// mediator and the service's epoch-keyed plan cache; cached plans must
	// answer like fresh ones before and after scripted roster churn, and
	// stale plans must never be served or executed.
	if inst.PlanCache {
		fs = append(fs, d.checkPlanCache(ctx, ev)...)
	}
	return fs, nil
}

// checkCosts verifies the cost-model invariants over the optimized classes:
// algorithm bookkeeping equals the shared estimator, the dominance chain
// SJA ≤ {SJ, FILTER, greedy variants} and SJA+ ≤ SJA holds, and on small
// instances SJA matches the exhaustive optimum.
func checkCosts(ev *env, results map[string]optimizer.Result) []Failure {
	var fs []Failure
	tol := func(x float64) float64 { return 1e-6 * (1 + math.Abs(x)) }

	for _, cls := range []string{"filter", "sj", "sja"} {
		r, ok := results[cls]
		if !ok {
			continue
		}
		est, err := plan.EstimateCost(r.Plan, ev.pr.Table)
		if err != nil {
			fs = append(fs, Failure{Property: "cost-bookkeeping", Class: cls, Detail: "estimator failed: " + err.Error()})
			continue
		}
		if math.Abs(est.Cost-r.Cost) > tol(r.Cost) {
			fs = append(fs, Failure{Property: "cost-bookkeeping", Class: cls,
				Detail: fmt.Sprintf("algorithm bookkeeping %v != estimator %v", r.Cost, est.Cost)})
		}
	}

	sja, haveSJA := results["sja"]
	if haveSJA {
		// SJA is optimal within the class containing FILTER, SJ and the
		// greedy (non-postoptimized) variants.
		for _, cls := range []string{"filter", "sj", "greedy-sj", "greedy-sja", "greedy-adaptive-sja"} {
			if r, ok := results[cls]; ok && sja.Cost > r.Cost+tol(r.Cost) {
				fs = append(fs, Failure{Property: "cost-dominance", Class: cls,
					Detail: fmt.Sprintf("sja cost %v exceeds %s cost %v", sja.Cost, cls, r.Cost)})
			}
		}
		if plus, ok := results["sja+"]; ok && plus.Cost > sja.Cost+tol(sja.Cost) {
			fs = append(fs, Failure{Property: "cost-dominance", Class: "sja+",
				Detail: fmt.Sprintf("sja+ cost %v exceeds sja cost %v", plus.Cost, sja.Cost)})
		}
	}
	if plus, ok := results["sja+"]; ok {
		if gplus, ok2 := results["greedy-sja+"]; ok2 && plus.Cost > gplus.Cost+tol(gplus.Cost) {
			fs = append(fs, Failure{Property: "cost-dominance", Class: "greedy-sja+",
				Detail: fmt.Sprintf("sja+ cost %v exceeds greedy-sja+ cost %v", plus.Cost, gplus.Cost)})
		}
	}

	// Exhaustive cross-check on small instances: the chosen SJA plan's cost
	// must match the brute-force optimum over every enumerated alternative.
	if haveSJA {
		m, n := len(ev.pr.Conds), len(ev.pr.Sources)
		count := 1.0
		for i := 2; i <= m; i++ {
			count *= float64(i)
		}
		count *= math.Pow(3, float64(n*(m-1)))
		if count <= exhaustiveGate {
			ex, err := optimizer.Exhaustive(ev.pr)
			if err != nil {
				fs = append(fs, Failure{Property: "optimize-error", Class: "exhaustive", Detail: err.Error()})
			} else if math.Abs(ex.Cost-sja.Cost) > tol(ex.Cost) {
				fs = append(fs, Failure{Property: "cost-dominance", Class: "exhaustive",
					Detail: fmt.Sprintf("sja cost %v != exhaustive optimum %v (ordering %v vs %v)", sja.Cost, ex.Cost, sja.Sketch.Ordering, ex.Sketch.Ordering)})
			}
		}
	}
	return fs
}

// runOpts configures one execution of one plan class.
type runOpts struct {
	mode      string
	parallel  bool
	streaming bool
	batch     int
	cache     *exec.Cache
	retries   int
	// allowErr classifies acceptable failures (fault and deadline sweeps).
	// Nil means the run must succeed.
	allowErr func(error) bool
}

// runPlan executes one plan with fresh observability state and checks every
// per-run property: answer equality (or honest partials), the accounting
// identities, and span/metric balance.
func (d *Driver) runPlan(ctx context.Context, ev *env, srcs []source.Source, cls string, p *plan.Plan, opts runOpts) []Failure {
	ev.network.Reset()
	o := &obs.Obs{QueryID: obs.NewQueryID(), Trace: obs.NewTrace(), Metrics: obs.NewRegistry()}
	o.Live = d.Recorder.Begin(o.QueryID, cls+" ["+opts.mode+"]")
	rctx := obs.With(ctx, o)
	ex := &exec.Executor{
		Sources:   srcs,
		Network:   ev.network,
		Parallel:  opts.parallel,
		Streaming: opts.streaming,
		BatchSize: opts.batch,
		Cache:     opts.cache,
		Retries:   opts.retries,
	}
	res, err := ex.Run(rctx, p)
	d.Recorder.End(o.Live, obs.EndInfo{Err: err, Trace: o.Trace,
		Items: res.Answer.Len(), Hedges: res.Hedges, Failovers: res.Failovers})
	var fs []Failure

	if err != nil {
		switch {
		case opts.allowErr == nil:
			fs = append(fs, Failure{Property: "exec-error", Class: cls, Mode: opts.mode, Detail: err.Error()})
		case !opts.allowErr(err):
			fs = append(fs, Failure{Property: "error-class", Class: cls, Mode: opts.mode,
				Detail: "unclassified failure: " + err.Error()})
		default:
			// Honest partial: a failed run may report the exact answer
			// (failure after the result was computed cannot happen — the
			// run would have succeeded — but the empty set is the honest
			// "no answer yet") and must never report a wrong non-empty one.
			if !res.Answer.IsEmpty() && !res.Answer.Equal(ev.ref) {
				fs = append(fs, Failure{Property: "partial-dishonest", Class: cls, Mode: opts.mode,
					Detail: fmt.Sprintf("failed run reported non-empty wrong answer (%d items, want %d): %v", res.Answer.Len(), ev.ref.Len(), err)})
			}
		}
	} else {
		got := res.Answer
		if d.Mutate != nil && cls == d.MutateClass {
			got = d.Mutate(got)
		}
		if !got.Equal(ev.ref) {
			fs = append(fs, Failure{Property: "answer-mismatch", Class: cls, Mode: opts.mode,
				Detail: answerDiff(got, ev.ref)})
		}
	}

	// Accounting identities hold for successful and failed runs alike: the
	// counters report the traffic actually paid for.
	switch {
	case opts.parallel, opts.streaming:
		// Overlapped execution: the critical path can never exceed the
		// summed work.
		if res.ResponseTime > res.TotalWork {
			fs = append(fs, Failure{Property: "par-response", Class: cls, Mode: opts.mode,
				Detail: fmt.Sprintf("overlapped response time %v exceeds total work %v", res.ResponseTime, res.TotalWork)})
		}
	case res.ResponseTime != res.TotalWork:
		fs = append(fs, Failure{Property: "seq-identity", Class: cls, Mode: opts.mode,
			Detail: fmt.Sprintf("sequential response time %v != total work %v", res.ResponseTime, res.TotalWork)})
	}
	if err == nil {
		// A successful run knows when its answer first existed, and its peak
		// memory accounting can never be below the answer it holds.
		if res.FirstAnswer <= 0 {
			fs = append(fs, Failure{Property: "first-answer", Class: cls, Mode: opts.mode,
				Detail: "successful run reported no first-answer latency"})
		}
		if res.PeakBytes < res.Answer.Bytes() {
			fs = append(fs, Failure{Property: "peak-accounting", Class: cls, Mode: opts.mode,
				Detail: fmt.Sprintf("peak bytes %d below answer bytes %d", res.PeakBytes, res.Answer.Bytes())})
		}
	}

	fs = append(fs, checkObsBalance(cls, opts.mode, res, o)...)
	return fs
}

// answerDiff summarizes how an executed answer diverges from the reference.
func answerDiff(got, want set.Set) string {
	missing := want.Diff(got)
	extra := got.Diff(want)
	return fmt.Sprintf("answer has %d items, reference %d; missing %s, extra %s",
		got.Len(), want.Len(), sample(missing), sample(extra))
}

// sample renders a set, eliding beyond 5 items.
func sample(s set.Set) string {
	if s.Len() <= 5 {
		return s.String()
	}
	return fmt.Sprintf("%v… (%d items)", set.New(s.Items()[:5]...), s.Len())
}

// checkObsBalance verifies zero span/metric imbalance: every started span
// ended, the per-source counter sums equal the executor's result counters,
// and the scheduler gauges drained back to zero.
func checkObsBalance(cls, mode string, res *exec.Result, o *obs.Obs) []Failure {
	var fs []Failure
	unfinished := 0
	for _, sp := range o.Trace.Export() {
		if !sp.Finished {
			unfinished++
		}
	}
	if unfinished > 0 {
		fs = append(fs, Failure{Property: "span-unfinished", Class: cls, Mode: mode,
			Detail: fmt.Sprintf("%d of %d spans never ended", unfinished, o.Trace.Len())})
	}
	snap := o.Metrics.Snapshot()
	for _, chk := range []struct {
		metric string
		want   int
	}{
		{obs.MSourceQueries, res.SourceQueries},
		{obs.MCacheHits, res.CacheHits},
		{obs.MCacheMisses, res.CacheMisses},
		{obs.MRetries, res.Retries},
	} {
		if got := metricSum(snap, chk.metric); got != int64(chk.want) {
			fs = append(fs, Failure{Property: "metric-imbalance", Class: cls, Mode: mode,
				Detail: fmt.Sprintf("%s sums to %d, result counter says %d", chk.metric, got, chk.want)})
		}
	}
	for _, gauge := range []string{obs.MSchedQueueDepth, obs.MSchedLaneOccupancy} {
		if got := metricSum(snap, gauge); got != 0 {
			fs = append(fs, Failure{Property: "gauge-leak", Class: cls, Mode: mode,
				Detail: fmt.Sprintf("%s left at %d after the run", gauge, got)})
		}
	}
	return fs
}

// metricSum totals a family's point values across all label sets.
func metricSum(snap []obs.MetricFamily, name string) int64 {
	var sum int64
	for _, f := range snap {
		if f.Name != name {
			continue
		}
		for _, p := range f.Points {
			sum += p.Value
		}
	}
	return sum
}

// checkCacheReuse runs the SJA plan twice against one shared answer cache:
// the first run must register misses, the second must convert them into
// hits and never issue more source queries than the first — and both must
// still return the exact answer.
func (d *Driver) checkCacheReuse(ctx context.Context, ev *env, results map[string]optimizer.Result) []Failure {
	r, ok := results["sja"]
	if !ok {
		return nil
	}
	cache := exec.NewCache()
	var fs []Failure
	run := func() (*exec.Result, []Failure, error) {
		o := &obs.Obs{QueryID: obs.NewQueryID(), Trace: obs.NewTrace(), Metrics: obs.NewRegistry()}
		ev.network.Reset()
		ex := &exec.Executor{Sources: ev.sources, Network: ev.network, Cache: cache}
		res, err := ex.Run(obs.With(ctx, o), r.Plan)
		if err != nil {
			return nil, nil, err
		}
		sub := checkObsBalance("sja", "cached", res, o)
		if got := d.mutated("sja", res.Answer); !got.Equal(ev.ref) {
			sub = append(sub, Failure{Property: "answer-mismatch", Class: "sja", Mode: "cached", Detail: answerDiff(got, ev.ref)})
		}
		return res, sub, nil
	}

	res1, sub, err := run()
	if err != nil {
		return append(fs, Failure{Property: "exec-error", Class: "sja", Mode: "cached", Detail: err.Error()})
	}
	fs = append(fs, sub...)
	if res1.CacheMisses == 0 {
		fs = append(fs, Failure{Property: "cache-reuse", Class: "sja", Mode: "cached",
			Detail: "first cached run registered no misses"})
	}

	res2, sub, err := run()
	if err != nil {
		return append(fs, Failure{Property: "exec-error", Class: "sja", Mode: "cached", Detail: err.Error()})
	}
	fs = append(fs, sub...)
	if res2.CacheHits == 0 {
		fs = append(fs, Failure{Property: "cache-reuse", Class: "sja", Mode: "cached",
			Detail: fmt.Sprintf("warm run scored no hits (first run: %d misses)", res1.CacheMisses)})
	}
	if res2.SourceQueries > res1.SourceQueries {
		fs = append(fs, Failure{Property: "cache-reuse", Class: "sja", Mode: "cached",
			Detail: fmt.Sprintf("warm run issued %d source queries, cold run %d", res2.SourceQueries, res1.SourceQueries)})
	}
	return fs
}

// mutated applies the corruption hook when the class matches.
func (d *Driver) mutated(cls string, answer set.Set) set.Set {
	if d.Mutate != nil && cls == d.MutateClass {
		return d.Mutate(answer)
	}
	return answer
}

// checkJoinOverUnion runs the Section 5 baseline — distribute the join over
// the union into n^m SPJ subqueries — with and without memoization. The
// baseline bypasses the scheduler's accounting, so only answer equality is
// checked.
func (d *Driver) checkJoinOverUnion(ctx context.Context, ev *env) []Failure {
	var fs []Failure
	for _, memoize := range []bool{false, true} {
		cls := "jou"
		if memoize {
			cls = "jou-memo"
		}
		ev.network.Reset()
		ex := &exec.Executor{Sources: ev.sources, Network: ev.network}
		res, err := ex.RunJoinOverUnion(ctx, ev.pr, memoize, 0)
		if err != nil {
			fs = append(fs, Failure{Property: "exec-error", Class: cls, Detail: err.Error()})
			continue
		}
		if got := d.mutated(cls, res.Answer); !got.Equal(ev.ref) {
			fs = append(fs, Failure{Property: "answer-mismatch", Class: cls, Detail: answerDiff(got, ev.ref)})
		}
	}
	return fs
}

// checkFaults reruns representative classes against flaky sources with a
// retry budget. A run must either absorb the injected failures and return
// the exact answer, or fail with an honestly-classified error and no wrong
// partial answer. Runs are sequential: the injected failure sequence is
// then a pure function of the instance seed.
func (d *Driver) checkFaults(ctx context.Context, ev *env, results map[string]optimizer.Result) []Failure {
	flaky := make([]source.Source, len(ev.sources))
	for j, src := range ev.sources {
		flaky[j] = source.NewFlaky(src, ev.inst.FaultRate, ev.inst.Seed+int64(j)*7919)
	}
	allow := func(err error) bool {
		return errors.Is(err, source.ErrTransient) ||
			errors.Is(err, context.Canceled) ||
			errors.Is(err, context.DeadlineExceeded)
	}
	var fs []Failure
	for _, cls := range []string{"filter", "sja+"} {
		r, ok := results[cls]
		if !ok {
			continue
		}
		fs = append(fs, d.runPlan(ctx, ev, flaky, cls, r.Plan, runOpts{
			mode:     "faults",
			retries:  ev.inst.Retries + 2,
			allowErr: allow,
		})...)
	}

	// Streaming fault sweep on fresh flaky wrappers: the concurrent nodes
	// draw injected failures in a nondeterministic order (the materialized
	// sweep above keeps its deterministic sequence by running first on its
	// own wrappers), but the property is order-independent — absorb the
	// faults and return the exact answer, or fail honestly.
	streamFlaky := make([]source.Source, len(ev.sources))
	for j, src := range ev.sources {
		streamFlaky[j] = source.NewFlaky(src, ev.inst.FaultRate, ev.inst.Seed+int64(j)*104729)
	}
	for _, cls := range []string{"filter", "sja+"} {
		r, ok := results[cls]
		if !ok {
			continue
		}
		fs = append(fs, d.runPlan(ctx, ev, streamFlaky, cls, r.Plan, runOpts{
			mode:      "stream-faults",
			streaming: true,
			retries:   ev.inst.Retries + 2,
			allowErr:  allow,
		})...)
	}
	return fs
}

// checkChurn rebuilds the roster with the first source behind a
// two-replica fabric logical and replays the filter plan — materialized and
// streaming — while scripted churn kills replicas at time zero. With a
// surviving replica the run must absorb the death (fabric failover for
// materialized exchanges, whole-stream retry for streaming ones) and return
// the exact answer; with every replica dead it must fail with a classified
// exhaustion or link-down error and never a wrong non-empty answer. The
// sweep is deterministic: the network is non-realtime, hedging is disabled,
// and a fresh logical's unobserved endpoints bound how often the dead
// replica can be picked before its breaker opens.
func (d *Driver) checkChurn(ctx context.Context, ev *env, results map[string]optimizer.Result) []Failure {
	r, ok := results["filter"]
	if !ok {
		return nil
	}
	name := ev.sources[0].Name()
	link := netsim.Link{
		Latency:         time.Duration(ev.inst.LatencyUS[0]) * time.Microsecond,
		BytesPerSec:     1 << 20,
		RequestOverhead: 100 * time.Microsecond,
		MaxConns:        ev.inst.MaxConns[0],
	}
	var eps []*fabric.Endpoint
	for _, suffix := range []string{"-a", "-b"} {
		rep := source.NewWrapper(name+suffix, source.NewRowBackend(ev.sc.Relations[0]), ev.sc.Sources[0].Caps())
		ev.network.SetLink(rep.Name(), link)
		eps = append(eps, fabric.NewEndpoint(source.Instrument(rep, ev.network), ev.inst.MaxConns[0]))
	}
	logical, err := fabric.NewLogical(name, eps, fabric.Options{DisableHedging: true, ExploreProb: -1})
	if err != nil {
		return []Failure{{Property: "exec-error", Class: "filter", Mode: "churn", Detail: err.Error()}}
	}
	srcs := append([]source.Source(nil), ev.sources...)
	srcs[0] = logical

	events := []netsim.ChurnEvent{{At: 0, Source: eps[0].Name(), Kind: netsim.ChurnKill}}
	if ev.inst.ChurnKillAll {
		events = append(events, netsim.ChurnEvent{At: 0, Source: eps[1].Name(), Kind: netsim.ChurnKill})
	}
	ev.network.ScheduleChurn(events)
	defer ev.network.ScheduleChurn(nil)

	var allow func(error) bool
	if ev.inst.ChurnKillAll {
		allow = func(err error) bool {
			return errors.Is(err, fabric.ErrExhausted) || errors.Is(err, netsim.ErrDown)
		}
	}
	var fs []Failure
	fs = append(fs, d.runPlan(ctx, ev, srcs, "filter", r.Plan, runOpts{
		mode: "churn", retries: 1, allowErr: allow,
	})...)
	// Streaming: a stream that lands on a dead replica fails mid-stream and
	// recovers through the executor's whole-stream retry; the breaker's
	// failure threshold (3) bounds how many consecutive retries the dead
	// endpoint can absorb before selection converges on the survivor.
	fs = append(fs, d.runPlan(ctx, ev, srcs, "filter", r.Plan, runOpts{
		mode: "stream-churn", streaming: true, retries: 3, allowErr: allow,
	})...)
	return fs
}

// checkDeadline executes the SJA plan with real-time exchanges under a
// context deadline sized from the plan's own cost estimate, so both
// outcomes — completion and expiry — occur across instances. Either way the
// run must be honest: the exact answer, or a context-classified error.
func (d *Driver) checkDeadline(ctx context.Context, ev *env, results map[string]optimizer.Result) []Failure {
	r, ok := results["sja"]
	if !ok {
		return nil
	}
	frac := []float64{0.05, 0.2, 0.7, 2.0}[int(ev.inst.Seed&3)]
	timeout := time.Duration(frac * realTimeScale * r.Cost * float64(time.Second))
	if timeout < 200*time.Microsecond {
		timeout = 200 * time.Microsecond
	}
	if timeout > 100*time.Millisecond {
		timeout = 100 * time.Millisecond
	}
	ev.network.SetRealTime(realTimeScale)
	defer ev.network.SetRealTime(0)
	allow := func(err error) bool {
		return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
	}
	dctx, cancel := context.WithTimeout(ctx, timeout)
	fs := d.runPlan(dctx, ev, ev.sources, "sja", r.Plan, runOpts{mode: "deadline", allowErr: allow})
	cancel()
	// The streaming pipeline must honor the same deadline honestly: exact
	// answer or a context-classified error, never a wrong partial.
	sctx, scancel := context.WithTimeout(ctx, timeout)
	defer scancel()
	fs = append(fs, d.runPlan(sctx, ev, ev.sources, "sja", r.Plan, runOpts{mode: "stream-deadline", streaming: true, allowErr: allow})...)
	return fs
}
