package oracle

import (
	"context"
	"testing"
	"time"

	"fusionq/internal/obs"
)

// TestWireTraceSweep forces the trace-completeness sweep on several
// instances: every exchange over the loopback wire servers must leave a
// grafted, skew-normalized, byte-reconciled server fragment, and the
// answers must still match the reference.
func TestWireTraceSweep(t *testing.T) {
	d := &Driver{}
	ctx := context.Background()
	for seed := int64(0); seed < 5; seed++ {
		inst := Generate(*oracleSeed + seed)
		inst.WireTrace = true
		// The other sweeps are covered by TestOracle; keep this one focused
		// (and fast) on the wire phase.
		inst.Parallel, inst.CacheRuns, inst.Faults, inst.Deadline, inst.Replicate = false, false, false, false, false
		fs, err := d.Check(ctx, inst)
		if err != nil {
			t.Fatalf("seed %d: instance could not be built: %v", inst.Seed, err)
		}
		if len(fs) > 0 {
			reportFailures(t, d, inst, fs)
		}
	}
}

// TestCheckFragmentsCatchesViolations proves the sweep's checks have teeth
// against hand-built traces: a missing graft, an unfinished graft, and a
// fragment escaping its wire envelope must each be flagged.
func TestCheckFragmentsCatchesViolations(t *testing.T) {
	base := time.Now()
	wire := func(id int64) obs.SpanData {
		return obs.SpanData{ID: id, Kind: obs.KindWire, Name: "sq @ x", Start: base, DurationUS: 1000, Finished: true}
	}
	cases := []struct {
		name  string
		spans []obs.SpanData
		prop  string
	}{
		{"missing", []obs.SpanData{wire(1)}, "wire-frag-missing"},
		{"doubled", []obs.SpanData{wire(1),
			{ID: 2, Parent: 1, Kind: obs.KindServer, Start: base, DurationUS: 10, Finished: true},
			{ID: 3, Parent: 1, Kind: obs.KindServer, Start: base, DurationUS: 10, Finished: true}},
			"wire-frag-missing"},
		{"unfinished", []obs.SpanData{wire(1),
			{ID: 2, Parent: 1, Kind: obs.KindServer, Start: base, DurationUS: 0}},
			"wire-frag-missing"},
		{"escapes", []obs.SpanData{wire(1),
			{ID: 2, Parent: 1, Kind: obs.KindServer, Start: base.Add(900 * time.Microsecond), DurationUS: 500, Finished: true}},
			"wire-frag-nesting"},
	}
	for _, tc := range cases {
		_, _, fs := checkFragments(tc.spans, "test")
		if !hasProperty(fs, tc.prop) {
			t.Errorf("%s: expected %s violation, got %v", tc.name, tc.prop, fs)
		}
	}
	// A properly nested fragment passes and its bytes are totaled.
	in, out, fs := checkFragments([]obs.SpanData{wire(1),
		{ID: 2, Parent: 1, Kind: obs.KindServer, Start: base.Add(100 * time.Microsecond), DurationUS: 500, Finished: true,
			Attrs: map[string]string{"bytesIn": "17", "bytesOut": "41"}}}, "test")
	if len(fs) != 0 || in != 17 || out != 41 {
		t.Errorf("clean trace flagged or mistotaled: %d in, %d out, %v", in, out, fs)
	}
}
