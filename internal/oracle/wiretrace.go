package oracle

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"fusionq/internal/exec"
	"fusionq/internal/obs"
	"fusionq/internal/optimizer"
	"fusionq/internal/source"
	"fusionq/internal/wire"
)

// checkWireTrace is the trace-completeness sweep: the instance's sources are
// served over real loopback wire servers (each with its own metrics
// registry) and a plan is executed through wire clients, materialized and
// streaming. Every exchange against a server advertising the fragment
// extension must then leave a grafted server-side fragment in the trace:
//
//   - wire-frag-missing: a wire span has no (or more than one) grafted
//     KindServer child — the server's timing fragment was lost;
//   - wire-frag-nesting: the grafted fragment escapes its wire-span
//     envelope, i.e. clock-skew normalization failed to center the server
//     interval inside the round trip;
//   - wire-bytes-mismatch: the fragments' semantic byte counts disagree
//     with the servers' own fq_wire_bytes_{in,out}_total counters — the two
//     accounts of the same traffic drifted apart.
//
// The Dial-time meta exchange is excluded: it happens before the client has
// seen Meta.Fragments, so it never carries a fragment (and its semantic
// payload is zero bytes on both sides).
func (d *Driver) checkWireTrace(ctx context.Context, ev *env, results map[string]optimizer.Result) []Failure {
	r, ok := results["sja"]
	if !ok {
		if r, ok = results["filter"]; !ok {
			return nil
		}
	}
	infra := func(err error) []Failure {
		return []Failure{{Property: "exec-error", Class: "wire", Mode: "wiretrace", Detail: err.Error()}}
	}
	regs := make([]*obs.Registry, len(ev.sc.Sources))
	clients := make([]source.Source, len(ev.sc.Sources))
	var closers []func()
	defer func() {
		for _, f := range closers {
			f()
		}
	}()
	for j, raw := range ev.sc.Sources {
		regs[j] = obs.NewRegistry()
		// Per-request log lines would swamp a soak; the registry and the
		// fragments carry everything the checks need.
		srv, err := wire.ServeConfig(raw, "127.0.0.1:0", wire.Config{
			Metrics: regs[j],
			Logf:    func(string, ...interface{}) {},
		})
		if err != nil {
			return infra(err)
		}
		closers = append(closers, func() { _ = srv.Close() })
		// The dial's meta exchange runs outside any query Obs: no wire span,
		// no fragment, zero semantic bytes.
		cli, err := wire.DialContext(ctx, srv.Addr())
		if err != nil {
			return infra(err)
		}
		closers = append(closers, func() { _ = cli.Close() })
		clients[j] = cli
	}

	var fs []Failure
	fragIn, fragOut := 0, 0
	run := func(mode string, streaming bool) {
		o := &obs.Obs{QueryID: obs.NewQueryID(), Trace: obs.NewTrace(), Metrics: obs.NewRegistry()}
		ex := &exec.Executor{Sources: clients, Streaming: streaming}
		res, err := ex.Run(obs.With(ctx, o), r.Plan)
		if err != nil {
			fs = append(fs, Failure{Property: "exec-error", Class: "wire", Mode: mode, Detail: err.Error()})
			return
		}
		if !res.Answer.Equal(ev.ref) {
			fs = append(fs, Failure{Property: "answer-mismatch", Class: "wire", Mode: mode, Detail: answerDiff(res.Answer, ev.ref)})
		}
		in, out, sub := checkFragments(o.Trace.Export(), mode)
		fragIn += in
		fragOut += out
		fs = append(fs, sub...)
	}
	run("wiretrace", false)
	run("stream-wiretrace", true)

	// Both runs hit the same servers, so the fragments' byte totals must
	// reconcile with the servers' accumulated counters.
	wantIn := wireByteSum(regs, obs.MWireBytesIn)
	wantOut := wireByteSum(regs, obs.MWireBytesOut)
	if fragIn != wantIn || fragOut != wantOut {
		fs = append(fs, Failure{Property: "wire-bytes-mismatch", Class: "wire", Mode: "wiretrace",
			Detail: fmt.Sprintf("fragments report %d in / %d out, server counters %d in / %d out",
				fragIn, fragOut, wantIn, wantOut)})
	}
	return fs
}

// checkFragments verifies that every wire span carries exactly one finished
// grafted server fragment, nested inside the wire envelope, and totals the
// fragments' byte attributes.
func checkFragments(spans []obs.SpanData, mode string) (bytesIn, bytesOut int, fs []Failure) {
	children := map[int64][]obs.SpanData{}
	for _, sp := range spans {
		if sp.Kind == obs.KindServer {
			children[sp.Parent] = append(children[sp.Parent], sp)
		}
	}
	for _, sp := range spans {
		if sp.Kind != obs.KindWire {
			continue
		}
		kids := children[sp.ID]
		if len(kids) != 1 {
			fs = append(fs, Failure{Property: "wire-frag-missing", Class: "wire", Mode: mode,
				Detail: fmt.Sprintf("wire span %q has %d grafted server fragments, want exactly 1", sp.Name, len(kids))})
			continue
		}
		k := kids[0]
		if !k.Finished {
			fs = append(fs, Failure{Property: "wire-frag-missing", Class: "wire", Mode: mode,
				Detail: fmt.Sprintf("grafted fragment %q under %q is not finished", k.Name, sp.Name)})
			continue
		}
		wEnd := sp.Start.Add(time.Duration(sp.DurationUS) * time.Microsecond)
		kEnd := k.Start.Add(time.Duration(k.DurationUS) * time.Microsecond)
		if k.Start.Before(sp.Start) || kEnd.After(wEnd) {
			fs = append(fs, Failure{Property: "wire-frag-nesting", Class: "wire", Mode: mode,
				Detail: fmt.Sprintf("fragment %q [%v, %v] escapes wire envelope %q [%v, %v]",
					k.Name, k.Start, kEnd, sp.Name, sp.Start, wEnd)})
		}
		bytesIn += atoiAttr(k, "bytesIn")
		bytesOut += atoiAttr(k, "bytesOut")
	}
	return bytesIn, bytesOut, fs
}

func atoiAttr(sp obs.SpanData, key string) int {
	n, err := strconv.Atoi(sp.Attrs[key])
	if err != nil {
		return 0
	}
	return n
}

// wireByteSum totals one wire byte-counter family across the servers'
// registries, excluding the fragment-free meta exchanges.
func wireByteSum(regs []*obs.Registry, name string) int {
	total := 0
	for _, reg := range regs {
		for _, fam := range reg.Snapshot() {
			if fam.Name != name {
				continue
			}
			for _, p := range fam.Points {
				if p.Labels["op"] == wire.OpMeta {
					continue
				}
				total += int(p.Value)
			}
		}
	}
	return total
}
