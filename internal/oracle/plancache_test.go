package oracle

import (
	"context"
	"testing"
)

// TestPlanCacheSweep forces the plan-cache coherence sweep on several
// instances: cached plans must answer exactly like fresh ones, roster churn
// must invalidate every old-epoch entry, and stale plans must never
// execute.
func TestPlanCacheSweep(t *testing.T) {
	d := &Driver{}
	ctx := context.Background()
	checked := 0
	for seed := int64(0); seed < 8; seed++ {
		inst := Generate(*oracleSeed + seed)
		inst.PlanCache = true
		// The other sweeps are covered by TestOracle; keep this one focused
		// (and fast) on the plan-cache phase.
		inst.Parallel, inst.CacheRuns, inst.Faults, inst.Deadline, inst.Replicate, inst.WireTrace = false, false, false, false, false, false
		if inst.NumSources >= 2 {
			checked++
		}
		fs, err := d.Check(ctx, inst)
		if err != nil {
			t.Fatalf("seed %d: instance could not be built: %v", inst.Seed, err)
		}
		if len(fs) > 0 {
			reportFailures(t, d, inst, fs)
		}
	}
	if checked == 0 {
		t.Fatal("every generated instance was single-source; the sweep never ran")
	}
}
