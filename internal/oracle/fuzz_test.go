package oracle

import (
	"context"
	"testing"
)

// FuzzOracle drives the differential oracle from a fuzzed seed: the corpus
// explores the generator's whole parameter space one int64 at a time, and
// any failing seed becomes a permanent regression input. The deadline sweep
// is disabled (it sleeps real wall-clock time) and the data volume capped,
// so individual executions stay fast enough for fuzzing throughput.
func FuzzOracle(f *testing.F) {
	for _, seed := range []int64{0, 1, 2, 42, -7, 1 << 40, -(1 << 52)} {
		f.Add(seed)
	}
	d := &Driver{}
	f.Fuzz(func(t *testing.T, seed int64) {
		inst := Generate(seed)
		inst.Deadline = false
		if inst.TuplesPerSource > 60 {
			inst.TuplesPerSource = 60
		}
		fs, err := d.Check(context.Background(), inst)
		if err != nil {
			t.Fatalf("seed %d: instance could not be built: %v\n%s", seed, err, inst.JSON())
		}
		if len(fs) > 0 {
			reportFailures(t, d, inst, fs)
		}
	})
}
