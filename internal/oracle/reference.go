package oracle

import (
	"fmt"

	"fusionq/internal/set"
	"fusionq/internal/workload"
)

// ReferenceAnswer computes the fusion query's ground-truth answer the naive
// way: conceptually load every source to the mediator and evaluate every
// condition there. An item is in the answer iff, for each condition, some
// tuple at some source carries the item and satisfies the condition
// (Section 2.1's semantics — conditions may be witnessed at different
// sources). The implementation reads the scenario's raw relations directly,
// sharing no code with the optimizer or executor under test.
func ReferenceAnswer(sc *workload.Scenario) (set.Set, error) {
	m := len(sc.Conds)
	satisfied := make([]map[string]bool, m)
	for i := range satisfied {
		satisfied[i] = map[string]bool{}
	}
	for _, rel := range sc.Relations {
		schema := rel.Schema()
		mi := schema.MergeIndex()
		for _, t := range rel.Rows() {
			item := t[mi].Raw()
			for i, c := range sc.Conds {
				ok, err := c.Eval(schema, t)
				if err != nil {
					return set.Set{}, fmt.Errorf("oracle: reference eval %q: %w", c, err)
				}
				if ok {
					satisfied[i][item] = true
				}
			}
		}
	}
	var items []string
	for item := range satisfied[0] {
		all := true
		for i := 1; i < m; i++ {
			if !satisfied[i][item] {
				all = false
				break
			}
		}
		if all {
			items = append(items, item)
		}
	}
	return set.New(items...), nil
}
