package oracle

import (
	"math/rand"
)

// Generation bounds. Instances are kept deliberately small: the oracle's
// power comes from running hundreds of diverse instances, not from any
// single large one, and small instances shrink to readable repros.
const (
	maxConds   = 3
	maxSources = 5
	maxTuples  = 120
	maxItems   = 80
)

// Generate derives a complete oracle instance from one seed. Equal seeds
// yield equal instances — the whole harness's reproducibility rests on this
// being the only entry point for randomness.
func Generate(seed int64) Instance {
	rng := rand.New(rand.NewSource(seed))
	in := Instance{
		Seed:            seed,
		NumSources:      1 + rng.Intn(maxSources),
		TuplesPerSource: 5 + rng.Intn(maxTuples-4),
		Universe:        4 + rng.Intn(maxItems-3),
		Backend:         rng.Intn(4),
		Zipf:            rng.Float64() < 0.2,
		Retries:         rng.Intn(3),
	}

	m := 1 + rng.Intn(maxConds)
	in.Selectivity = make([]float64, m)
	for i := range in.Selectivity {
		// Spread selectivities across decades: very selective conditions
		// make semijoins attractive, broad ones favor plain selections.
		in.Selectivity[i] = 0.02 + 0.88*rng.Float64()*rng.Float64()
	}
	if rng.Float64() < 0.3 {
		in.Correlation = rng.Float64()
	}
	if rng.Float64() < 0.2 {
		in.PayloadBytes = 16 << rng.Intn(5) // 16..256 bytes
	}

	in.CapTiers = make([]int, in.NumSources)
	in.LatencyUS = make([]int, in.NumSources)
	in.MaxConns = make([]int, in.NumSources)
	for j := range in.CapTiers {
		// Weighted tiers: native-capable sources dominate, emulation-only
		// is common, selection-only stays a minority so most instances
		// exercise semijoin machinery.
		switch p := rng.Float64(); {
		case p < 0.40:
			in.CapTiers[j] = TierNative
		case p < 0.60:
			in.CapTiers[j] = TierBloom
		case p < 0.90:
			in.CapTiers[j] = TierEmulated
		default:
			in.CapTiers[j] = TierNone
		}
		in.LatencyUS[j] = 200 + rng.Intn(4800)
		in.MaxConns[j] = 1 + rng.Intn(4)
	}

	in.Parallel = rng.Float64() < 0.6
	in.CacheRuns = rng.Float64() < 0.5
	if rng.Float64() < 0.35 {
		in.Faults = true
		in.FaultRate = 0.01 + 0.24*rng.Float64()
	}
	in.Deadline = rng.Float64() < 0.2
	if rng.Float64() < 0.3 {
		in.Replicate = true
		in.ChurnKillAll = rng.Float64() < 0.5
	}
	// Drawn last so enabling these sweeps perturbs no earlier field (and
	// in this order, so older seeds keep their WireTrace draw).
	in.WireTrace = rng.Float64() < 0.4
	in.PlanCache = rng.Float64() < 0.4
	return in
}
