package oracle

import (
	"context"
)

// shrinkTransforms are the greedy reductions the shrinker tries, most
// aggressive first: structural cuts (fewer sources, fewer conditions, less
// data), then feature removal (sweeps, skew, heterogeneity). Each transform
// either returns a strictly simpler instance or reports no change.
var shrinkTransforms = []struct {
	name  string
	apply func(Instance) (Instance, bool)
}{
	{"drop-source", func(in Instance) (Instance, bool) {
		if in.NumSources <= 1 {
			return in, false
		}
		in.NumSources--
		in.CapTiers = append([]int(nil), in.CapTiers[:in.NumSources]...)
		in.LatencyUS = append([]int(nil), in.LatencyUS[:in.NumSources]...)
		in.MaxConns = append([]int(nil), in.MaxConns[:in.NumSources]...)
		return in, true
	}},
	{"drop-condition", func(in Instance) (Instance, bool) {
		if len(in.Selectivity) <= 1 {
			return in, false
		}
		in.Selectivity = append([]float64(nil), in.Selectivity[:len(in.Selectivity)-1]...)
		return in, true
	}},
	{"halve-tuples", func(in Instance) (Instance, bool) {
		if in.TuplesPerSource <= 1 {
			return in, false
		}
		in.TuplesPerSource /= 2
		if in.TuplesPerSource < 1 {
			in.TuplesPerSource = 1
		}
		return in, true
	}},
	{"halve-universe", func(in Instance) (Instance, bool) {
		if in.Universe <= 1 {
			return in, false
		}
		in.Universe /= 2
		if in.Universe < 1 {
			in.Universe = 1
		}
		return in, true
	}},
	{"drop-faults", func(in Instance) (Instance, bool) {
		if !in.Faults {
			return in, false
		}
		in.Faults = false
		in.FaultRate = 0
		return in, true
	}},
	{"drop-deadline", func(in Instance) (Instance, bool) {
		if !in.Deadline {
			return in, false
		}
		in.Deadline = false
		return in, true
	}},
	{"drop-parallel", func(in Instance) (Instance, bool) {
		if !in.Parallel {
			return in, false
		}
		in.Parallel = false
		return in, true
	}},
	{"drop-cache-runs", func(in Instance) (Instance, bool) {
		if !in.CacheRuns {
			return in, false
		}
		in.CacheRuns = false
		return in, true
	}},
	{"drop-wiretrace", func(in Instance) (Instance, bool) {
		if !in.WireTrace {
			return in, false
		}
		in.WireTrace = false
		return in, true
	}},
	{"drop-plancache", func(in Instance) (Instance, bool) {
		if !in.PlanCache {
			return in, false
		}
		in.PlanCache = false
		return in, true
	}},
	{"drop-zipf", func(in Instance) (Instance, bool) {
		if !in.Zipf {
			return in, false
		}
		in.Zipf = false
		return in, true
	}},
	{"drop-correlation", func(in Instance) (Instance, bool) {
		if in.Correlation == 0 {
			return in, false
		}
		in.Correlation = 0
		return in, true
	}},
	{"drop-payload", func(in Instance) (Instance, bool) {
		if in.PayloadBytes == 0 {
			return in, false
		}
		in.PayloadBytes = 0
		return in, true
	}},
	{"drop-retries", func(in Instance) (Instance, bool) {
		if in.Retries == 0 {
			return in, false
		}
		in.Retries = 0
		return in, true
	}},
	{"uniform-caps", func(in Instance) (Instance, bool) {
		changed := false
		tiers := append([]int(nil), in.CapTiers...)
		for j, t := range tiers {
			if t != TierNative {
				tiers[j] = TierNative
				changed = true
			}
		}
		in.CapTiers = tiers
		return in, changed
	}},
	{"single-conn", func(in Instance) (Instance, bool) {
		changed := false
		conns := append([]int(nil), in.MaxConns...)
		for j, k := range conns {
			if k != 1 {
				conns[j] = 1
				changed = true
			}
		}
		in.MaxConns = conns
		return in, changed
	}},
	{"uniform-latency", func(in Instance) (Instance, bool) {
		changed := false
		lat := append([]int(nil), in.LatencyUS...)
		for j, l := range lat {
			if l != 1000 {
				lat[j] = 1000
				changed = true
			}
		}
		in.LatencyUS = lat
		return in, changed
	}},
}

// Shrink greedily minimizes a failing instance: it repeatedly tries each
// transform and keeps the simplified instance whenever re-checking it still
// reproduces at least one of the original failure's properties, until no
// transform makes progress or maxChecks re-checks have been spent
// (non-positive means the default of 200). It returns the minimal instance
// and its failures; on an unshrinkable input it returns the original pair.
func (d *Driver) Shrink(ctx context.Context, inst Instance, orig []Failure, maxChecks int) (Instance, []Failure) {
	if len(orig) == 0 {
		return inst, orig
	}
	if maxChecks <= 0 {
		maxChecks = 200
	}
	want := properties(orig)
	cur, curFails := inst, orig
	checks := 0
	for {
		progressed := false
		for _, tr := range shrinkTransforms {
			for {
				if checks >= maxChecks {
					return cur, curFails
				}
				cand, changed := tr.apply(cur)
				if !changed {
					break
				}
				checks++
				fs, err := d.Check(ctx, cand)
				if err != nil || !anyProperty(fs, want) {
					break
				}
				cur, curFails = cand, fs
				progressed = true
			}
		}
		if !progressed {
			return cur, curFails
		}
	}
}

// anyProperty reports whether any failure's property is in want.
func anyProperty(fs []Failure, want map[string]bool) bool {
	for _, f := range fs {
		if want[f.Property] {
			return true
		}
	}
	return false
}
