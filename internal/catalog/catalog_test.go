package catalog

import (
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fusionq/internal/core"
	"fusionq/internal/fabric"
	"fusionq/internal/set"
	"fusionq/internal/source"
	"fusionq/internal/wire"
	"fusionq/internal/workload"
)

const (
	r1CSV = "L,V,D\nJ55,dui,1993\nT21,sp,1994\nT80,dui,1993\n"
	r2CSV = "L,V,D\nT21,dui,1996\nJ55,sp,1996\nT11,sp,1993\n"
	r3CSV = "L,V,D\nT21,sp,1993\nS07,sp,1996\nS07,sp,1993\n"
)

func writeCatalogDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for name, data := range map[string]string{"r1.csv": r1CSV, "r2.csv": r2CSV, "r3.csv": r3CSV} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestLoadAndBuild(t *testing.T) {
	dir := writeCatalogDir(t)
	catJSON := `{
	  "merge": "L",
	  "sources": [
	    {"csv": "r1.csv", "caps": "native", "bloom": true,
	     "link": {"latencyMs": 10, "bytesPerSec": 65536, "overheadMs": 5}},
	    {"name": "nv", "csv": "r2.csv", "caps": "bindings"},
	    {"csv": "r3.csv", "caps": "none"}
	  ]
	}`
	path := filepath.Join(dir, "catalog.json")
	if err := os.WriteFile(path, []byte(catJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	cat, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if cat.Sources[0].Name != "r1" {
		t.Fatalf("defaulted name = %q, want file basename", cat.Sources[0].Name)
	}
	m, closer, err := cat.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	defer closer()
	if got := m.SourceNames(); len(got) != 3 || got[1] != "nv" {
		t.Fatalf("SourceNames = %v", got)
	}
	if !m.Sources()[0].Caps().BloomSemijoin {
		t.Fatal("bloom capability not applied")
	}
	ans, err := m.Query(`SELECT u1.L FROM U u1, U u2 WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp'`, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if want := set.New("J55", "T21"); !ans.Items.Equal(want) {
		t.Fatalf("answer = %v, want %v", ans.Items, want)
	}
}

func TestBuildWithRemoteSource(t *testing.T) {
	dir := writeCatalogDir(t)
	sc := workload.DMV()
	srv, err := wire.Serve(source.NewWrapper("remote3", source.NewRowBackend(sc.Relations[2]),
		source.Capabilities{NativeSemijoin: true, PassedBindings: true}), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	catJSON := `{
	  "merge": "L",
	  "sources": [
	    {"csv": "r1.csv"},
	    {"csv": "r2.csv"},
	    {"remote": "` + srv.Addr() + `"}
	  ]
	}`
	path := filepath.Join(dir, "catalog.json")
	if err := os.WriteFile(path, []byte(catJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	cat, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	m, closer, err := cat.Build()
	if err != nil {
		t.Fatal(err)
	}
	defer closer()
	ans, err := m.Query(`SELECT u1.L FROM U u1, U u2 WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp'`, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if want := set.New("J55", "T21"); !ans.Items.Equal(want) {
		t.Fatalf("answer = %v, want %v", ans.Items, want)
	}
}

func TestBuildReplicatedSource(t *testing.T) {
	dir := writeCatalogDir(t)
	sc := workload.DMV()
	srv, err := wire.Serve(source.NewWrapper("ca_b", source.NewRowBackend(sc.Relations[0]),
		source.Capabilities{NativeSemijoin: true, PassedBindings: true}), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	catJSON := `{
	  "merge": "L",
	  "sources": [
	    {"name": "ca_a", "csv": "r1.csv", "replicaOf": "ca"},
	    {"name": "ca_b", "remote": "` + srv.Addr() + `", "replicaOf": "ca"},
	    {"csv": "r2.csv"},
	    {"csv": "r3.csv"}
	  ]
	}`
	path := filepath.Join(dir, "catalog.json")
	if err := os.WriteFile(path, []byte(catJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	cat, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	m, closer, err := cat.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	defer closer()
	// The mediator plans against the logical name at the group's position;
	// replicas never appear in the roster.
	if got := m.SourceNames(); len(got) != 3 || got[0] != "ca" || got[1] != "r2" || got[2] != "r3" {
		t.Fatalf("SourceNames = %v, want [ca r2 r3]", got)
	}
	logical, ok := m.Sources()[0].(*fabric.Logical)
	if !ok {
		t.Fatalf("roster source 0 is %T, want *fabric.Logical", m.Sources()[0])
	}
	if got := len(logical.Endpoints()); got != 2 {
		t.Fatalf("logical endpoints = %d, want 2", got)
	}
	ans, err := m.Query(`SELECT u1.L FROM U u1, U u2 WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp'`, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if want := set.New("J55", "T21"); !ans.Items.Equal(want) {
		t.Fatalf("answer = %v, want %v", ans.Items, want)
	}
}

// TestBuildReplicaDeadAtAssembly: a replica that is down when the catalog
// is built must not block assembly — its group only needs one live member —
// but a group with no reachable replica at all must fail.
func TestBuildReplicaDeadAtAssembly(t *testing.T) {
	dir := writeCatalogDir(t)
	sc := workload.DMV()
	srv, err := wire.Serve(source.NewWrapper("ca_b", source.NewRowBackend(sc.Relations[0]),
		source.Capabilities{NativeSemijoin: true, PassedBindings: true}), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	_ = ln.Close() // nothing listens here now: dials are refused

	catJSON := `{
	  "merge": "L",
	  "sources": [
	    {"name": "ca_a", "remote": "` + deadAddr + `", "replicaOf": "ca"},
	    {"name": "ca_b", "remote": "` + srv.Addr() + `", "replicaOf": "ca"},
	    {"csv": "r2.csv"},
	    {"csv": "r3.csv"}
	  ]
	}`
	path := filepath.Join(dir, "catalog.json")
	if err := os.WriteFile(path, []byte(catJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	cat, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	m, closer, err := cat.Build()
	if err != nil {
		t.Fatalf("Build with one dead replica: %v", err)
	}
	defer closer()
	logical, ok := m.Sources()[0].(*fabric.Logical)
	if !ok {
		t.Fatalf("roster source 0 is %T, want *fabric.Logical", m.Sources()[0])
	}
	if got := len(logical.Endpoints()); got != 1 {
		t.Fatalf("logical endpoints = %d, want 1 (the survivor)", got)
	}
	ans, err := m.Query(`SELECT u1.L FROM U u1, U u2 WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp'`, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if want := set.New("J55", "T21"); !ans.Items.Equal(want) {
		t.Fatalf("answer = %v, want %v", ans.Items, want)
	}

	// Every replica dead: assembly must fail, naming the logical source.
	allDead := `{
	  "merge": "L",
	  "sources": [
	    {"name": "ca_a", "remote": "` + deadAddr + `", "replicaOf": "ca"},
	    {"csv": "r2.csv"}
	  ]
	}`
	cat2, err := Parse([]byte(allDead))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	cat2.dir = dir
	if _, _, err := cat2.Build(); err == nil || !strings.Contains(err.Error(), `"ca"`) {
		t.Fatalf("Build with every replica dead = %v, want error naming the group", err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"empty":            `{}`,
		"no locator":       `{"sources": [{"name": "x"}]}`,
		"both locators":    `{"sources": [{"csv": "a.csv", "remote": "x:1"}]}`,
		"bad caps":         `{"sources": [{"csv": "a.csv", "caps": "wizard"}]}`,
		"duplicate":        `{"sources": [{"csv": "a.csv", "name": "x"}, {"csv": "b.csv", "name": "x"}]}`,
		"unknown field":    `{"sources": [{"csv": "a.csv", "wat": 1}]}`,
		"not json":         `nope`,
		"nameless replica": `{"sources": [{"remote": "x:1", "replicaOf": "r"}]}`,
		"logical collides": `{"sources": [{"csv": "a.csv", "name": "r"}, {"csv": "b.csv", "name": "r_b", "replicaOf": "r"}]}`,
	}
	for name, data := range cases {
		if _, err := Parse([]byte(data)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load("/nonexistent/catalog.json"); err == nil {
		t.Fatal("missing file should fail")
	}
}

func TestBuildErrors(t *testing.T) {
	dir := writeCatalogDir(t)
	// Missing CSV.
	cat := &Catalog{Sources: []SourceSpec{{Name: "x", CSV: "missing.csv"}}, dir: dir}
	if _, _, err := cat.Build(); err == nil {
		t.Error("missing csv should fail")
	}
	// Unreachable remote.
	cat = &Catalog{Sources: []SourceSpec{{Name: "x", Remote: "127.0.0.1:1"}}}
	if _, _, err := cat.Build(); err == nil {
		t.Error("unreachable remote should fail")
	}
	// Incompatible schemas.
	if err := os.WriteFile(filepath.Join(dir, "other.csv"), []byte("K,W\nx,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cat = &Catalog{Sources: []SourceSpec{{CSV: "r1.csv"}, {CSV: "other.csv"}}, dir: dir}
	if _, _, err := cat.Build(); err == nil {
		t.Error("incompatible schemas should fail")
	}
}

func TestLinkSpec(t *testing.T) {
	var nilSpec *LinkSpec
	zero := &LinkSpec{}
	if nilSpec.Link() != zero.Link() {
		t.Fatal("nil and zero specs should both mean the default link")
	}
	l := (&LinkSpec{LatencyMs: 10, BytesPerSec: 1000, OverheadMs: 5}).Link()
	if l.Latency != 10*time.Millisecond || l.BytesPerSec != 1000 || l.RequestOverhead != 5*time.Millisecond {
		t.Fatalf("Link = %+v", l)
	}
}
