// Package catalog loads mediator configurations: a JSON file naming the
// autonomous sources (local CSV relations or remote wire endpoints), their
// capability tiers and their link characteristics. The command-line tools
// use it to assemble a mediator in one flag instead of many.
//
// Example:
//
//	{
//	  "merge": "L",
//	  "sources": [
//	    {"name": "dmv_ca", "csv": "ca.csv", "caps": "native", "bloom": true,
//	     "link": {"latencyMs": 40, "bytesPerSec": 131072, "overheadMs": 20}},
//	    {"name": "dmv_nv", "remote": "10.0.0.2:7070"}
//	  ]
//	}
//
// A source may instead declare itself a replica of a logical source with
// "replicaOf": every spec naming the same logical source becomes one
// physical endpoint behind it, and the mediator plans against the logical
// name only — replica selection, failover and hedging happen in the
// source fabric:
//
//	{"name": "dmv_ca_a", "csv": "ca.csv", "replicaOf": "dmv_ca"},
//	{"name": "dmv_ca_b", "remote": "10.0.0.3:7070", "replicaOf": "dmv_ca"}
package catalog

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"fusionq/internal/core"
	"fusionq/internal/csvio"
	"fusionq/internal/fabric"
	"fusionq/internal/netsim"
	"fusionq/internal/relation"
	"fusionq/internal/source"
	"fusionq/internal/wire"
)

// LinkSpec configures the simulated link to one source.
type LinkSpec struct {
	LatencyMs   float64 `json:"latencyMs"`
	BytesPerSec float64 `json:"bytesPerSec"`
	OverheadMs  float64 `json:"overheadMs"`
	JitterFrac  float64 `json:"jitterFrac"`
}

// Link converts the spec to a netsim.Link; a zero spec means DefaultLink.
func (l *LinkSpec) Link() netsim.Link {
	if l == nil || (*l == LinkSpec{}) {
		return netsim.DefaultLink()
	}
	return netsim.Link{
		Latency:         time.Duration(l.LatencyMs * float64(time.Millisecond)),
		BytesPerSec:     l.BytesPerSec,
		RequestOverhead: time.Duration(l.OverheadMs * float64(time.Millisecond)),
		JitterFrac:      l.JitterFrac,
	}
}

// SourceSpec describes one source. Exactly one of CSV or Remote is set.
type SourceSpec struct {
	Name   string    `json:"name"`
	CSV    string    `json:"csv,omitempty"`
	Remote string    `json:"remote,omitempty"`
	Caps   string    `json:"caps,omitempty"` // native | bindings | none
	Bloom  bool      `json:"bloom,omitempty"`
	Link   *LinkSpec `json:"link,omitempty"`
	// ReplicaOf names the logical source this spec is one physical replica
	// of. All specs sharing a ReplicaOf value are registered as one
	// replicated source under that logical name.
	ReplicaOf string `json:"replicaOf,omitempty"`
}

// Catalog is a parsed configuration.
type Catalog struct {
	// Merge names the merge attribute for CSV sources; empty means the
	// first column.
	Merge   string       `json:"merge,omitempty"`
	Sources []SourceSpec `json:"sources"`
	// dir is the catalog file's directory; relative CSV paths resolve
	// against it.
	dir string
}

// Load reads and validates a catalog file.
func Load(path string) (*Catalog, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("catalog: %w", err)
	}
	cat, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("catalog: %s: %w", path, err)
	}
	cat.dir = filepath.Dir(path)
	return cat, nil
}

// Parse validates catalog JSON.
func Parse(data []byte) (*Catalog, error) {
	var cat Catalog
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cat); err != nil {
		return nil, err
	}
	if len(cat.Sources) == 0 {
		return nil, fmt.Errorf("no sources")
	}
	seen := map[string]bool{}
	groups := map[string]bool{}
	for i, s := range cat.Sources {
		if (s.CSV == "") == (s.Remote == "") {
			return nil, fmt.Errorf("source %d: exactly one of csv or remote must be set", i)
		}
		if s.CSV != "" && s.Name == "" {
			cat.Sources[i].Name = strings.TrimSuffix(filepath.Base(s.CSV), filepath.Ext(s.CSV))
		}
		name := cat.Sources[i].Name
		if name != "" {
			if seen[name] {
				return nil, fmt.Errorf("duplicate source name %q", name)
			}
			seen[name] = true
		}
		switch s.Caps {
		case "", "native", "bindings", "none":
		default:
			return nil, fmt.Errorf("source %d: unknown caps %q", i, s.Caps)
		}
		if s.ReplicaOf != "" {
			if cat.Sources[i].Name == "" {
				return nil, fmt.Errorf("source %d: a replica of %q needs its own name", i, s.ReplicaOf)
			}
			groups[s.ReplicaOf] = true
		}
	}
	for g := range groups {
		if seen[g] {
			return nil, fmt.Errorf("logical source %q collides with a replica or source name", g)
		}
	}
	return &cat, nil
}

func capsOf(spec SourceSpec) source.Capabilities {
	var caps source.Capabilities
	switch spec.Caps {
	case "", "native":
		caps = source.Capabilities{NativeSemijoin: true, PassedBindings: true}
	case "bindings":
		caps = source.Capabilities{PassedBindings: true}
	case "none":
		caps = source.Capabilities{}
	}
	caps.BloomSemijoin = spec.Bloom
	return caps
}

// Build assembles a mediator from the catalog: CSV sources are loaded into
// row stores, remote sources dialed, every source registered with its
// link-derived cost profile. A remote replica that cannot be dialed is
// skipped — its group only needs one live member, and the fabric routes
// around the rest — but a plain source failing, or a replica group with no
// reachable member, fails the build. The returned closer releases remote
// connections.
func (c *Catalog) Build() (*core.Mediator, func(), error) {
	return c.BuildContext(context.Background())
}

// BuildContext is Build honoring ctx while dialing remote sources.
func (c *Catalog) BuildContext(ctx context.Context) (*core.Mediator, func(), error) {
	var (
		m       *core.Mediator
		schema  *relation.Schema
		closers []func()
		built   []source.Source
	)
	closeAll := func() {
		for _, f := range closers {
			f()
		}
	}
	network := netsim.NewNetwork(1)
	for _, spec := range c.Sources {
		var src source.Source
		switch {
		case spec.CSV != "":
			path := spec.CSV
			if !filepath.IsAbs(path) && c.dir != "" {
				path = filepath.Join(c.dir, path)
			}
			rel, err := csvio.Load(path, c.Merge)
			if err != nil {
				closeAll()
				return nil, nil, err
			}
			src = source.NewWrapper(spec.Name, source.NewRowBackend(rel), capsOf(spec))
		default:
			cli, err := wire.DialContext(ctx, spec.Remote)
			if err != nil {
				if spec.ReplicaOf != "" && ctx.Err() == nil {
					// A dead replica must not block assembly: its group only
					// needs one live member, and the fabric routes around the
					// rest. Registration below fails if none survived.
					built = append(built, nil)
					continue
				}
				closeAll()
				return nil, nil, err
			}
			closers = append(closers, func() { _ = cli.Close() })
			src = cli
		}
		if schema == nil {
			schema = src.Schema()
			m = core.New(schema)
			m.SetNetwork(network)
		} else if !schema.Compatible(src.Schema()) {
			closeAll()
			return nil, nil, fmt.Errorf("catalog: source %s schema %s incompatible with %s",
				src.Name(), src.Schema(), schema)
		}
		built = append(built, src)
	}
	// Register sources in catalog order: plain sources directly, replica
	// groups as one fabric-backed logical source at their first member's
	// position.
	registered := map[string]bool{}
	for i, spec := range c.Sources {
		if spec.ReplicaOf == "" {
			if err := m.AddSourceLink(built[i], spec.Link.Link()); err != nil {
				closeAll()
				return nil, nil, err
			}
			continue
		}
		if registered[spec.ReplicaOf] {
			continue
		}
		registered[spec.ReplicaOf] = true
		var replicas []core.ReplicaSpec
		for j, other := range c.Sources {
			if other.ReplicaOf == spec.ReplicaOf && built[j] != nil {
				replicas = append(replicas, core.ReplicaSpec{Source: built[j], Link: other.Link.Link()})
			}
		}
		if len(replicas) == 0 {
			closeAll()
			return nil, nil, fmt.Errorf("catalog: logical source %q: no replica reachable", spec.ReplicaOf)
		}
		if _, err := m.AddReplicatedSource(spec.ReplicaOf, replicas, fabric.Options{}); err != nil {
			closeAll()
			return nil, nil, err
		}
	}
	return m, closeAll, nil
}
