package exec

import (
	"context"
	"fmt"

	"fusionq/internal/plan"
	"fusionq/internal/relation"
	"fusionq/internal/set"
)

// RunCombined executes the plan in "combined" mode — the Section 6
// extension beyond two-phase processing, where source queries return other
// attributes in addition to the merge attribute. The final round's
// selection and semijoin queries return the matching items' full records in
// the same exchange; after the answer is known, only the records not
// already shipped are fetched. The answer and the returned records are
// identical to Run followed by FetchAnswer; only the traffic schedule
// differs.
//
// The trade-off (quantified in experiment E13): combined mode avoids the
// per-source fetch round, but ships full records for the final round's
// whole result — a superset of the answer.
func (e *Executor) RunCombined(ctx context.Context, p *plan.Plan) (*Result, *relation.Relation, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	final := finalRoundCond(p)
	if final < 0 {
		return nil, nil, fmt.Errorf("exec: plan has no source queries to combine")
	}
	combined := &Executor{
		Sources:   e.Sources,
		Network:   e.Network,
		Parallel:  e.Parallel,
		Conns:     e.Conns,
		Cache:     e.Cache,
		Trace:     e.Trace,
		Retries:   e.Retries,
		finalCond: final,
		records:   map[int]map[string][]relation.Tuple{},
	}
	res, err := combined.Run(ctx, p)
	if err != nil {
		// res is the partial result; no records were assembled.
		return res, nil, err
	}
	records, err := combined.collectRecords(ctx, p, res.Answer)
	if err != nil {
		return res, nil, err
	}
	return res, records, nil
}

// finalRoundCond returns the condition index of the plan's last round: the
// Cond of the last source-query or local-selection step.
func finalRoundCond(p *plan.Plan) int {
	for k := len(p.Steps) - 1; k >= 0; k-- {
		s := p.Steps[k]
		if s.Kind == plan.KindSelect || s.Kind == plan.KindSemijoin || s.Kind == plan.KindLocalSelect {
			return s.Cond
		}
	}
	return -1
}

// cacheRecords remembers the records a final-round query shipped from a
// source, keyed by item.
func (e *Executor) cacheRecords(srcIdx int, tuples []relation.Tuple, mergeIdx int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	byItem := e.records[srcIdx]
	if byItem == nil {
		byItem = map[string][]relation.Tuple{}
		e.records[srcIdx] = byItem
	}
	for _, t := range tuples {
		item := t[mergeIdx].Raw()
		byItem[item] = append(byItem[item], t)
	}
}

// collectRecords assembles the answer entities' full records: cached
// final-round records where available, loaded source contents for loaded
// sources, and targeted fetches for whatever is missing.
func (e *Executor) collectRecords(ctx context.Context, p *plan.Plan, answer set.Set) (*relation.Relation, error) {
	if len(e.Sources) == 0 {
		return nil, fmt.Errorf("exec: no sources")
	}
	schema := e.Sources[0].Schema()
	out := relation.NewRelation(schema)
	if answer.IsEmpty() {
		return out, nil
	}
	// Loaded sources' contents are already at the mediator.
	loadedOf := map[int]*relation.Relation{}
	for k, s := range p.Steps {
		if s.Kind == plan.KindLoad {
			// The executor stored loaded contents under the step's output
			// variable; recover it from the last run's state.
			if rel, ok := e.lastLoaded[p.Steps[k].Out]; ok {
				loadedOf[s.Source] = rel
			}
		}
	}
	for j, src := range e.Sources {
		covered := map[string]bool{}
		// Cached final-round records.
		for item, tuples := range e.records[j] {
			covered[item] = true
			if !answer.Contains(item) {
				continue
			}
			for _, t := range tuples {
				if err := out.Insert(t); err != nil {
					return nil, fmt.Errorf("exec: collecting records from %s: %w", src.Name(), err)
				}
			}
		}
		// Loaded contents answer locally.
		if rel, ok := loadedOf[j]; ok {
			for _, item := range answer.Items() {
				if covered[item] {
					continue
				}
				covered[item] = true
				for _, t := range rel.RowsWithItem(item) {
					if err := out.Insert(t); err != nil {
						return nil, fmt.Errorf("exec: collecting records from %s: %w", src.Name(), err)
					}
				}
			}
		}
		// Fetch the rest.
		var missing []string
		for _, item := range answer.Items() {
			if !covered[item] {
				missing = append(missing, item)
			}
		}
		if len(missing) > 0 {
			tuples, err := src.Fetch(ctx, set.New(missing...))
			if err != nil {
				return nil, fmt.Errorf("exec: fetching remainder from %s: %w", src.Name(), err)
			}
			for _, t := range tuples {
				if err := out.Insert(t); err != nil {
					return nil, fmt.Errorf("exec: fetching remainder from %s: %w", src.Name(), err)
				}
			}
		}
	}
	return out, nil
}
