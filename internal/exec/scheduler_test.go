package exec

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"fusionq/internal/cond"
	"fusionq/internal/plan"
	"fusionq/internal/source"
)

// failNthBinding wraps a source and injects one transient failure on the
// nth SelectBinding call, tracking per-item attempt counts.
type failNthBinding struct {
	source.Source
	mu      sync.Mutex
	n       int // 1-based call index to fail (once)
	calls   int
	fired   bool
	perItem map[string]int
}

func (f *failNthBinding) SelectBinding(ctx context.Context, c cond.Cond, item string) (bool, error) {
	f.mu.Lock()
	f.calls++
	if f.perItem == nil {
		f.perItem = map[string]int{}
	}
	f.perItem[item]++
	fail := !f.fired && f.calls == f.n
	if fail {
		f.fired = true
	}
	f.mu.Unlock()
	if fail {
		return false, fmt.Errorf("source %s: injected: %w", f.Source.Name(), source.ErrTransient)
	}
	return f.Source.SelectBinding(ctx, c, item)
}

// maxInflight wraps a source and records the peak number of concurrent
// SelectBinding calls.
type maxInflight struct {
	source.Source
	mu       sync.Mutex
	inflight int
	peak     int
}

func (m *maxInflight) SelectBinding(ctx context.Context, c cond.Cond, item string) (bool, error) {
	m.mu.Lock()
	m.inflight++
	if m.inflight > m.peak {
		m.peak = m.inflight
	}
	m.mu.Unlock()
	ok, err := m.Source.SelectBinding(ctx, c, item)
	m.mu.Lock()
	m.inflight--
	m.mu.Unlock()
	return ok, err
}

var semijoinCaps = []source.Capabilities{{}, {PassedBindings: true}, {}}

// semijoinPlan pins a selection at source 0 followed by an emulated
// semijoin at source 1.
func semijoinPlan(conds []cond.Cond, sources []string) *plan.Plan {
	return &plan.Plan{
		Conds:   conds,
		Sources: sources,
		Steps: []plan.Step{
			{Kind: plan.KindSelect, Out: "A", Cond: 0, Source: 0},
			{Kind: plan.KindSemijoin, Out: "B", Cond: 1, Source: 1, In: []string{"A"}},
		},
		Result: "B",
	}
}

// TestTransientBindingRetriesOnlyThatBinding checks the satellite retry
// semantics: when one binding query of an emulated semijoin fails
// transiently, only that binding is reissued — not the whole semijoin — and
// SourceQueries charges exactly the one extra attempt.
func TestTransientBindingRetriesOnlyThatBinding(t *testing.T) {
	// Baseline: no failure injection.
	pr, srcs, _ := dmvSetup(t, semijoinCaps)
	p := semijoinPlan(pr.Conds, pr.Sources)
	base, err := (&Executor{Sources: srcs}).Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if base.SourceQueries < 3 {
		t.Fatalf("baseline issued %d queries; need >=2 bindings for the test to mean anything", base.SourceQueries)
	}

	for _, parallel := range []bool{false, true} {
		name := "sequential"
		if parallel {
			name = "parallel"
		}
		t.Run(name, func(t *testing.T) {
			pr, srcs, _ := dmvSetup(t, semijoinCaps)
			inj := &failNthBinding{Source: srcs[1], n: 2}
			srcs[1] = inj
			ex := &Executor{Sources: srcs, Parallel: parallel, Conns: 2, Retries: 3}
			got, err := ex.Run(context.Background(), semijoinPlan(pr.Conds, pr.Sources))
			if err != nil {
				t.Fatalf("run with injected transient: %v", err)
			}
			if !inj.fired {
				t.Fatal("injection never fired; the test is vacuous")
			}
			if !got.Answer.Equal(base.Answer) {
				t.Fatalf("answer = %v, want %v", got.Answer, base.Answer)
			}
			// Exactly one extra attempt: the failed binding's retry.
			if got.SourceQueries != base.SourceQueries+1 {
				t.Fatalf("SourceQueries = %d, want %d (baseline %d + 1 retried binding)",
					got.SourceQueries, base.SourceQueries+1, base.SourceQueries)
			}
			retried, once := 0, 0
			for item, n := range inj.perItem {
				switch n {
				case 1:
					once++
				case 2:
					retried++
				default:
					t.Fatalf("item %s probed %d times; per-binding retry should reissue at most once", item, n)
				}
			}
			if retried != 1 {
				t.Fatalf("%d bindings retried, want exactly 1 (only the failed one)", retried)
			}
			if once != len(inj.perItem)-1 {
				t.Fatalf("%d bindings probed once, want %d", once, len(inj.perItem)-1)
			}
		})
	}
}

// TestTransientBindingFailsWithoutRetries checks fail-fast: with no retry
// budget, one transient binding failure fails the semijoin.
func TestTransientBindingFailsWithoutRetries(t *testing.T) {
	pr, srcs, _ := dmvSetup(t, semijoinCaps)
	srcs[1] = &failNthBinding{Source: srcs[1], n: 1}
	ex := &Executor{Sources: srcs, Parallel: true, Conns: 2}
	if _, err := ex.Run(context.Background(), semijoinPlan(pr.Conds, pr.Sources)); !source.IsTransient(err) {
		t.Fatalf("err = %v, want transient failure", err)
	}
}

// TestSchedulerBoundsConcurrency checks the slot pool: the peak number of
// in-flight binding queries at one source never exceeds Conns.
func TestSchedulerBoundsConcurrency(t *testing.T) {
	for _, conns := range []int{1, 2, 3} {
		t.Run(fmt.Sprintf("conns%d", conns), func(t *testing.T) {
			pr, srcs, _ := dmvSetup(t, semijoinCaps)
			probe := &maxInflight{Source: srcs[1]}
			srcs[1] = probe
			ex := &Executor{Sources: srcs, Parallel: true, Conns: conns}
			got, err := ex.Run(context.Background(), semijoinPlan(pr.Conds, pr.Sources))
			if err != nil {
				t.Fatal(err)
			}
			if got.Answer.IsEmpty() {
				t.Fatal("empty answer; expected matches")
			}
			if probe.peak > conns {
				t.Fatalf("peak in-flight bindings = %d, exceeds conns = %d", probe.peak, conns)
			}
		})
	}
}

// TestParallelTraceAttributesElapsed checks the fixed parallel-mode trace:
// each step's Elapsed comes from the netsim exchange log, so steps that
// reached a source show nonzero time and the per-step times sum to the
// total work even when the batch ran concurrently.
func TestParallelTraceAttributesElapsed(t *testing.T) {
	pr, srcs, network := dmvSetup(t, semijoinCaps)
	ex := &Executor{Sources: srcs, Network: network, Parallel: true, Conns: 2, Trace: true}
	got, err := ex.Run(context.Background(), semijoinPlan(pr.Conds, pr.Sources))
	if err != nil {
		t.Fatal(err)
	}
	var elapsed time.Duration
	for _, tr := range got.Trace {
		if tr.Queries > 0 && tr.Elapsed == 0 {
			t.Fatalf("step %d issued %d queries but shows zero elapsed:\n%s",
				tr.Index, tr.Queries, RenderTrace(got.Trace))
		}
		elapsed += tr.Elapsed
	}
	if elapsed != got.TotalWork {
		t.Fatalf("trace elapsed %v != total work %v", elapsed, got.TotalWork)
	}
}

// TestParallelSemijoinMatchesSequential checks the answer and the work
// accounting are identical across modes: parallelism overlaps exchanges but
// must not add, drop, or reorder any.
func TestParallelSemijoinMatchesSequential(t *testing.T) {
	pr, srcs, network := dmvSetup(t, semijoinCaps)
	p := semijoinPlan(pr.Conds, pr.Sources)
	seq, err := (&Executor{Sources: srcs, Network: network}).Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	for _, conns := range []int{1, 4} {
		pr, srcs, network := dmvSetup(t, semijoinCaps)
		ex := &Executor{Sources: srcs, Network: network, Parallel: true, Conns: conns}
		par, err := ex.Run(context.Background(), semijoinPlan(pr.Conds, pr.Sources))
		if err != nil {
			t.Fatal(err)
		}
		if !par.Answer.Equal(seq.Answer) {
			t.Fatalf("conns=%d: answer = %v, want %v", conns, par.Answer, seq.Answer)
		}
		if par.SourceQueries != seq.SourceQueries {
			t.Fatalf("conns=%d: SourceQueries = %d, want %d", conns, par.SourceQueries, seq.SourceQueries)
		}
		if par.TotalWork != seq.TotalWork {
			t.Fatalf("conns=%d: TotalWork = %v, want %v", conns, par.TotalWork, seq.TotalWork)
		}
		if par.ResponseTime > par.TotalWork {
			t.Fatalf("conns=%d: ResponseTime %v exceeds TotalWork %v", conns, par.ResponseTime, par.TotalWork)
		}
	}
}
