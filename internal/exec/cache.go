package exec

import (
	"context"
	"sync"

	"fusionq/internal/bloom"
	"fusionq/internal/cond"
	"fusionq/internal/obs"
	"fusionq/internal/relation"
	"fusionq/internal/set"
	"fusionq/internal/source"
)

// Cache is the mediator-side answer cache consulted before any selection or
// binding query. It holds two structures per (source, canonical condition)
// pair:
//
//   - a selection-result cache: the full item set sq(c, R) returned by a
//     completed selection, which answers membership for EVERY item (a
//     selection is complete, so absence means "does not satisfy");
//   - a tri-state membership cache: per-item verdicts learned from
//     passed-binding selections and native semijoins, where only the probed
//     items are known and everything else stays unknown.
//
// Sources are autonomous (Section 2.1): a cached answer is only guaranteed
// consistent with the source as of the exchange that produced it. The cache
// is therefore safe within one query execution (sources are assumed stable
// for the duration of a plan, exactly the assumption the optimizer's
// statistics already make) and is a freshness trade-off across queries;
// callers that share a Cache across queries own the decision of when to
// Clear it. All methods are safe for concurrent use — the scheduler consults
// the cache from many binding workers at once.
type Cache struct {
	mu sync.Mutex
	// selects maps source -> condition -> complete selection result.
	selects map[string]map[string]set.Set
	// members maps source -> condition -> item -> verdict.
	members map[string]map[string]map[string]bool

	hits   int
	misses int
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{
		selects: map[string]map[string]set.Set{},
		members: map[string]map[string]map[string]bool{},
	}
}

// CacheStats is a snapshot of the cache's hit/miss counters. A "hit" is one
// source query avoided (a whole selection, or one binding probe); a "miss"
// is a consultation that had to go to the source.
type CacheStats struct {
	Hits   int
	Misses int
}

// Stats returns the accumulated counters.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses}
}

// Clear drops all cached answers and counters. Call it when cached source
// state must be considered stale (the sources are autonomous and may have
// changed).
func (c *Cache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.selects = map[string]map[string]set.Set{}
	c.members = map[string]map[string]map[string]bool{}
	c.hits = 0
	c.misses = 0
}

// Len reports how many cached selection results and membership verdicts the
// cache holds.
func (c *Cache) Len() (selections, memberships int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, m := range c.selects {
		selections += len(m)
	}
	for _, m := range c.members {
		for _, items := range m {
			memberships += len(items)
		}
	}
	return selections, memberships
}

// condKey canonicalizes a condition for cache keying. Cond.String renders
// the parsed tree, so equal conditions render equally regardless of the
// original SQL spelling.
func condKey(c cond.Cond) string { return c.String() }

// Select returns the cached sq(c, src) result, counting a hit or miss.
func (c *Cache) Select(src string, cd cond.Cond) (set.Set, bool) {
	if c == nil {
		return set.Set{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out, ok := c.selects[src][condKey(cd)]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return out, ok
}

// PutSelect stores a complete selection result.
func (c *Cache) PutSelect(src string, cd cond.Cond, out set.Set) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.selects[src]
	if !ok {
		m = map[string]set.Set{}
		c.selects[src] = m
	}
	m[condKey(cd)] = out
}

// Lookup answers the membership question "does item satisfy cd at src?"
// from cached state: known reports whether the cache can answer at all, and
// match is the verdict when it can. A cached complete selection answers for
// every item; otherwise only explicitly probed items are known. Counts a hit
// when known, a miss otherwise.
func (c *Cache) Lookup(src string, cd cond.Cond, item string) (match, known bool) {
	if c == nil {
		return false, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	key := condKey(cd)
	if sel, ok := c.selects[src][key]; ok {
		c.hits++
		return sel.Contains(item), true
	}
	if v, ok := c.members[src][key][item]; ok {
		c.hits++
		return v, true
	}
	c.misses++
	return false, false
}

// PutMembership records one probed item's verdict.
func (c *Cache) PutMembership(src string, cd cond.Cond, item string, match bool) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.put(src, condKey(cd), item, match)
}

// PutSemijoin records the verdict of every item of a completed semijoin
// sjq(cd, src, y) with result out ⊆ y: members of out satisfy cd, the rest
// of y do not.
func (c *Cache) PutSemijoin(src string, cd cond.Cond, y, out set.Set) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	key := condKey(cd)
	for _, item := range y.Items() {
		c.put(src, key, item, out.Contains(item))
	}
}

// put stores one verdict; the caller holds the lock.
func (c *Cache) put(src, key, item string, match bool) {
	bySrc, ok := c.members[src]
	if !ok {
		bySrc = map[string]map[string]bool{}
		c.members[src] = bySrc
	}
	byCond, ok := bySrc[key]
	if !ok {
		byCond = map[string]bool{}
		bySrc[key] = byCond
	}
	byCond[item] = match
}

// Partition splits y by cached knowledge of cd at src into the items known
// to satisfy it, and the items whose verdict is unknown (items known NOT to
// satisfy are dropped — they cannot be in the semijoin result). The hit/miss
// counters account one consultation per item of y.
func (c *Cache) Partition(src string, cd cond.Cond, y set.Set) (knownTrue set.Set, unknown set.Set) {
	if c == nil {
		return set.Set{}, y
	}
	var trues, unk []string
	for _, item := range y.Items() {
		match, known := c.Lookup(src, cd, item)
		switch {
		case known && match:
			trues = append(trues, item)
		case !known:
			unk = append(unk, item)
		}
	}
	return set.FromSorted(trues), set.FromSorted(unk)
}

// CachedSource decorates a Source so that selection, binding and semijoin
// queries are answered from (and recorded into) a shared Cache. It lets a
// long-lived endpoint — the wire server of cmd/fqsource, or any roster
// shared across mediator queries — skip repeated identical source traffic.
// Record-returning operations (Fetch, SelectRecords, SemijoinRecords), loads
// and Bloom semijoins pass through uncached.
type CachedSource struct {
	inner source.Source
	cache *Cache
}

var _ source.Source = (*CachedSource)(nil)

// NewCachedSource wraps src with the given cache (which may be shared among
// several sources; entries are keyed by source name).
func NewCachedSource(src source.Source, cache *Cache) *CachedSource {
	return &CachedSource{inner: src, cache: cache}
}

// Cache returns the underlying cache (for stats and Clear).
func (s *CachedSource) Cache() *Cache { return s.cache }

// Name implements source.Source.
func (s *CachedSource) Name() string { return s.inner.Name() }

// Schema implements source.Source.
func (s *CachedSource) Schema() *relation.Schema { return s.inner.Schema() }

// Caps implements source.Source.
func (s *CachedSource) Caps() source.Capabilities { return s.inner.Caps() }

// meterCache emits hit/miss counters for one cache consultation to the
// context's registry (a no-op without one).
func (s *CachedSource) meterCache(ctx context.Context, hits, misses int) {
	met := obs.Meter(ctx)
	met.Counter(obs.MCacheHits, "source", s.Name()).Add(int64(hits))
	met.Counter(obs.MCacheMisses, "source", s.Name()).Add(int64(misses))
}

// Select implements source.Source, consulting the selection cache.
func (s *CachedSource) Select(ctx context.Context, c cond.Cond) (set.Set, error) {
	if out, ok := s.cache.Select(s.Name(), c); ok {
		s.meterCache(ctx, 1, 0)
		return out, nil
	}
	s.meterCache(ctx, 0, 1)
	out, err := s.inner.Select(ctx, c)
	if err != nil {
		return out, err
	}
	s.cache.PutSelect(s.Name(), c, out)
	return out, nil
}

// SelectBinding implements source.Source, consulting the membership cache.
func (s *CachedSource) SelectBinding(ctx context.Context, c cond.Cond, item string) (bool, error) {
	if match, known := s.cache.Lookup(s.Name(), c, item); known {
		s.meterCache(ctx, 1, 0)
		return match, nil
	}
	s.meterCache(ctx, 0, 1)
	match, err := s.inner.SelectBinding(ctx, c, item)
	if err != nil {
		return match, err
	}
	s.cache.PutMembership(s.Name(), c, item, match)
	return match, nil
}

// Semijoin implements source.Source: cached verdicts shrink the shipped set,
// and a semijoin whose every item is already known costs no exchange at all.
func (s *CachedSource) Semijoin(ctx context.Context, c cond.Cond, y set.Set) (set.Set, error) {
	if !s.Caps().NativeSemijoin {
		// Delegate so the inner source produces its canonical error.
		return s.inner.Semijoin(ctx, c, y)
	}
	knownTrue, unknown := s.cache.Partition(s.Name(), c, y)
	s.meterCache(ctx, y.Len()-unknown.Len(), unknown.Len())
	if unknown.IsEmpty() {
		return knownTrue, nil
	}
	out, err := s.inner.Semijoin(ctx, c, unknown)
	if err != nil {
		return out, err
	}
	s.cache.PutSemijoin(s.Name(), c, unknown, out)
	return out.Union(knownTrue), nil
}

// Load implements source.Source (uncached).
func (s *CachedSource) Load(ctx context.Context) (*relation.Relation, error) {
	return s.inner.Load(ctx)
}

// Fetch implements source.Source (uncached).
func (s *CachedSource) Fetch(ctx context.Context, items set.Set) ([]relation.Tuple, error) {
	return s.inner.Fetch(ctx, items)
}

// SelectRecords implements source.Source (uncached).
func (s *CachedSource) SelectRecords(ctx context.Context, c cond.Cond) ([]relation.Tuple, error) {
	return s.inner.SelectRecords(ctx, c)
}

// SemijoinRecords implements source.Source (uncached).
func (s *CachedSource) SemijoinRecords(ctx context.Context, c cond.Cond, y set.Set) ([]relation.Tuple, error) {
	return s.inner.SemijoinRecords(ctx, c, y)
}

// SemijoinBloom implements source.Source (uncached: the filter is
// set-specific and the result carries false positives).
func (s *CachedSource) SemijoinBloom(ctx context.Context, c cond.Cond, f *bloom.Filter) (set.Set, error) {
	return s.inner.SemijoinBloom(ctx, c, f)
}

// Card implements source.Source.
func (s *CachedSource) Card() (int, int, int) { return s.inner.Card() }
