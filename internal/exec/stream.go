package exec

// Streaming dataflow execution. Instead of materializing every set
// variable, runStreaming turns the plan into a pipeline: one goroutine per
// step, connected by bounded batch channels carrying sorted item batches
// (the set.Iter contract). Source selections are consumed chunk by chunk
// through source.OpenSelectStream, semijoins fan out per input batch as
// bindings arrive, and the local ∪/∩/− operators are the incremental
// merges of internal/set — so the first answer batch can exist long before
// the last source exchange completes, and peak mediator memory is bounded
// batch buffers rather than whole intermediate variables.
//
// Invariants shared with the materialized path:
//
//   - The answer is bit-for-bit identical: every edge carries each
//     variable's items in strictly increasing order with no duplicates, so
//     set.FromSorted over the drained answer equals the materialized
//     result variable.
//   - Honest partials: a failed or cancelled run returns an empty Answer
//     and an error, with counters reporting the traffic already paid for.
//     A node failure cancels the run context; downstream nodes observe
//     either the cancellation or their producer's closed edge, and the
//     truncated answer is discarded.
//   - Accounting: TotalWork is the network delta over the run,
//     ResponseTime the per-source k-lane makespan of the run's exchanges
//     (the whole run is one "round" — the pipeline overlaps everything the
//     data dependencies allow).
//
// Deadlock freedom: a node holds a scheduler slot only for the duration of
// one exchange (the open or one chunk pull), never across an emit — so
// consumer backpressure cannot starve same-source exchanges of later
// steps. Abandonment propagates upstream: when every consumer of a node's
// output has closed its edge (e.g. an intersect short-circuited on an
// exhausted input), the node stops cleanly without draining its source.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"fusionq/internal/bloom"
	"fusionq/internal/cond"
	"fusionq/internal/fabric"
	"fusionq/internal/netsim"
	"fusionq/internal/obs"
	"fusionq/internal/plan"
	"fusionq/internal/set"
	"fusionq/internal/source"
)

// streamEdgeDepth is the per-edge buffer in batches. Small: the buffer
// exists to decouple producer and consumer scheduling jitter, not to
// materialize intermediates.
const streamEdgeDepth = 2

// ssaSteps rewrites the plan's straight-line steps into single-assignment
// form. plan.Validate permits reassignment — the canonical plans use it
// freely (X2 := X2 ∩ X1) — but a dataflow node graph needs exactly one
// producer per variable, so each reassignment gets a fresh version name
// and later uses resolve to the version current at that point. Returns the
// rewritten steps and the version holding the plan's result.
func ssaSteps(p *plan.Plan) ([]plan.Step, string) {
	cur := make(map[string]string, len(p.Steps))
	defined := make(map[string]bool, len(p.Steps))
	steps := make([]plan.Step, len(p.Steps))
	for i, s := range p.Steps {
		ns := s
		ns.In = make([]string, len(s.In))
		for k, v := range s.In {
			ns.In[k] = cur[v]
		}
		out := s.Out
		for defined[out] {
			out = fmt.Sprintf("%s#%d", out, i)
		}
		defined[out] = true
		cur[s.Out] = out
		ns.Out = out
		steps[i] = ns
	}
	return steps, cur[p.Result]
}

// batchSize resolves the executor's streaming batch granularity.
func (e *Executor) batchSize() int {
	if e.BatchSize > 0 {
		return e.BatchSize
	}
	return set.DefaultBatch
}

// byteTracker is the live-bytes accounting behind streaming PeakBytes:
// bytes are added when a batch enters mediator memory (buffered on an
// edge, materialized at a barrier, appended to the answer) and released
// when it leaves.
type byteTracker struct {
	mu   sync.Mutex
	cur  int
	peak int
}

func (b *byteTracker) add(n int) {
	b.mu.Lock()
	b.cur += n
	if b.cur > b.peak {
		b.peak = b.cur
	}
	b.mu.Unlock()
}

func (b *byteTracker) release(n int) {
	b.mu.Lock()
	b.cur -= n
	b.mu.Unlock()
}

func (b *byteTracker) high() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.peak
}

func batchBytes(batch []string) int {
	n := 0
	for _, v := range batch {
		n += len(v)
	}
	return n
}

// streamEdge is one producer→consumer arc of the dataflow graph: a
// single-producer single-consumer batch queue. Single-consumer edges are
// bounded to streamEdgeDepth batches — that bound is the pipeline's
// backpressure. Fan-out edges (a variable with several consumers) are
// unbounded, and must be: with a bounded tee, one full edge stops the
// producer from feeding the variable's other consumers, and on a
// reconvergent plan DAG those mutual waits form a cycle (the classic
// bounded-buffer multicast deadlock). Unbounded tees make a producer block
// only ever on its sole consumer's edge, where "producer waits because the
// edge is full" and "consumer waits because the edge is empty" cannot
// coexist — so the wait-for graph is acyclic and the dataflow cannot
// deadlock. The skew a tee buffers is real mediator memory and is tracked
// in PeakBytes.
type streamEdge struct {
	tr    *byteTracker
	bound int // max buffered batches; 0 = unbounded (fan-out edges)

	mu        sync.Mutex
	buf       [][]string
	closed    bool
	abandoned bool
	sendKick  chan struct{} // capacity 1: consumer → producer wakeups
	recvKick  chan struct{} // capacity 1: producer → consumer wakeups
}

func newStreamEdge(tr *byteTracker) *streamEdge {
	return &streamEdge{
		tr:       tr,
		bound:    streamEdgeDepth,
		sendKick: make(chan struct{}, 1),
		recvKick: make(chan struct{}, 1),
	}
}

// kickOne wakes the other side without blocking; the capacity-1 channel
// latches the signal, and the woken side re-checks state in a loop, so a
// wakeup is never lost.
func kickOne(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}

// send delivers batch to the consumer, blocking under backpressure on a
// bounded edge. It returns delivered=false when the consumer abandoned the
// edge (the batch is dropped), and an error only for context cancellation.
func (ed *streamEdge) send(ctx context.Context, batch []string) (bool, error) {
	for {
		ed.mu.Lock()
		if ed.abandoned {
			ed.mu.Unlock()
			return false, nil
		}
		if ed.bound == 0 || len(ed.buf) < ed.bound {
			ed.buf = append(ed.buf, batch)
			ed.mu.Unlock()
			ed.tr.add(batchBytes(batch))
			kickOne(ed.recvKick)
			return true, nil
		}
		ed.mu.Unlock()
		select {
		case <-ed.sendKick:
		case <-ctx.Done():
			return false, ctx.Err()
		}
	}
}

// closeSend marks end-of-stream; the consumer sees EOF after draining.
func (ed *streamEdge) closeSend() {
	ed.mu.Lock()
	ed.closed = true
	ed.mu.Unlock()
	kickOne(ed.recvKick)
}

// recv pops the next batch, waiting for the producer when the edge is
// empty. (nil, nil) is EOF.
func (ed *streamEdge) recv(ctx context.Context) ([]string, error) {
	for {
		ed.mu.Lock()
		if len(ed.buf) > 0 {
			batch := ed.buf[0]
			ed.buf = ed.buf[1:]
			ed.mu.Unlock()
			ed.tr.release(batchBytes(batch))
			kickOne(ed.sendKick)
			return batch, nil
		}
		if ed.closed {
			ed.mu.Unlock()
			return nil, nil
		}
		ed.mu.Unlock()
		select {
		case <-ed.recvKick:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// abandonNow marks the edge abandoned (idempotent), releases whatever the
// producer buffered, and unblocks the producer so it can observe the
// abandonment.
func (ed *streamEdge) abandonNow() {
	ed.mu.Lock()
	if !ed.abandoned {
		ed.abandoned = true
		for _, b := range ed.buf {
			ed.tr.release(batchBytes(b))
		}
		ed.buf = nil
	}
	ed.mu.Unlock()
	kickOne(ed.sendKick)
}

// edgeIter adapts the consuming end of an edge to the set.Iter contract,
// so merge operators and Collect run directly over dataflow edges. Close
// abandons the edge; the short-circuit of an incremental intersect thereby
// propagates upstream as producer abandonment.
type edgeIter struct {
	ed *streamEdge
}

func (it *edgeIter) Next(ctx context.Context) ([]string, error) {
	return it.ed.recv(ctx)
}

func (it *edgeIter) Close() error {
	it.ed.abandonNow()
	return nil
}

// errAbandoned is the internal signal that every consumer of a node's
// output has abandoned its edge: the node stops producing and reports
// clean completion.
var errAbandoned = errors.New("exec: all stream consumers abandoned")

// emitter tees a node's output batches to its consumer edges, tracking
// which consumers have abandoned and the node's emission totals.
type emitter struct {
	outs    []*streamEdge
	dead    []bool
	live    int
	items   int
	batches int
}

func newEmitter(outs []*streamEdge) *emitter {
	return &emitter{outs: outs, dead: make([]bool, len(outs)), live: len(outs)}
}

// emit delivers one non-empty batch to every live consumer. Empty batches
// are dropped (the Iter contract forbids them on edges). Returns
// errAbandoned once no consumer remains, so producers stop paying for
// unwanted work. The tee never blocks on one consumer while starving
// another: an edge that is part of a fan-out is unbounded (see
// streamEdge), so the only blocking send is to a sole consumer.
func (em *emitter) emit(ctx context.Context, batch []string) error {
	if len(batch) == 0 {
		return nil
	}
	em.items += len(batch)
	em.batches++
	for i, ed := range em.outs {
		if em.dead[i] {
			continue
		}
		delivered, err := ed.send(ctx, batch)
		if err != nil {
			return err
		}
		if !delivered {
			em.dead[i] = true
			em.live--
		}
	}
	if em.live == 0 && len(em.outs) > 0 {
		return errAbandoned
	}
	return nil
}

// emitSorted streams a sorted, deduplicated slice as batches.
func (em *emitter) emitSorted(ctx context.Context, items []string, batch int) error {
	for lo := 0; lo < len(items); lo += batch {
		hi := lo + batch
		if hi > len(items) {
			hi = len(items)
		}
		if err := em.emit(ctx, items[lo:hi:hi]); err != nil {
			return err
		}
	}
	return nil
}

// streamRun is the shared state of one dataflow execution.
type streamRun struct {
	e   *Executor
	p   *plan.Plan
	st  *state
	res *Result

	ctx    context.Context
	cancel context.CancelFunc
	tr     *byteTracker

	wg sync.WaitGroup

	mu       sync.Mutex // guards res and firstErr across nodes
	firstErr error
}

// fail records the run's first error and cancels the pipeline. Recording
// before cancelling guarantees the causal error wins the race against the
// cancellation errors it triggers downstream.
func (r *streamRun) fail(err error) {
	r.mu.Lock()
	if r.firstErr == nil {
		r.firstErr = err
	}
	r.mu.Unlock()
	r.cancel()
}

// runStreaming executes p as a dataflow pipeline. Called by Run after plan
// validation and scheduler setup; st and res are the prepared execution
// state and result.
func (e *Executor) runStreaming(ctx context.Context, p *plan.Plan, st *state, res *Result) (*Result, error) {
	start := time.Now()
	var preTotal time.Duration
	logStart := 0
	if e.Network != nil {
		preTotal = e.Network.Stats().TotalTime
		logStart = len(e.Network.Log())
		defer func() {
			// As in runBatch: charge the network delta, clamped against a
			// concurrent query's mid-run accounting reset.
			if d := e.Network.Stats().TotalTime - preTotal; d > 0 {
				res.TotalWork += d
			}
		}()
	}

	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	r := &streamRun{
		e: e, p: p, st: st, res: res,
		ctx: rctx, cancel: cancel, tr: &byteTracker{},
	}

	// Rewrite to single-assignment form so every variable version has
	// exactly one producing node, then wire the graph: one edge per
	// (consumer step, input occurrence), plus the answer drain consumed
	// below. A version with several consumers has its batches teed to each
	// edge by the producer's emitter.
	steps, resultVar := ssaSteps(p)
	consumers := map[string][]*streamEdge{}
	stepIns := make([][]*streamEdge, len(steps))
	for i, s := range steps {
		ins := make([]*streamEdge, len(s.In))
		for k, v := range s.In {
			ed := newStreamEdge(r.tr)
			ins[k] = ed
			consumers[v] = append(consumers[v], ed)
		}
		stepIns[i] = ins
	}
	answerEdge := newStreamEdge(r.tr)
	consumers[resultVar] = append(consumers[resultVar], answerEdge)
	for _, edges := range consumers {
		if len(edges) > 1 {
			// Fan-out: unbounded edges, the deadlock-freedom invariant.
			for _, ed := range edges {
				ed.bound = 0
			}
		}
	}

	_, faSpan := obs.StartSpan(ctx, obs.KindPhase, "first-answer")

	for i := range steps {
		r.wg.Add(1)
		go func(idx int, s plan.Step) {
			defer r.wg.Done()
			r.node(idx, s, stepIns[idx], consumers[s.Out])
		}(i, steps[i])
	}

	// Drain the answer on this goroutine. The accumulated answer is
	// mediator memory for the rest of the run, so its bytes stay tracked.
	met := obs.Meter(ctx)
	ait := &edgeIter{ed: answerEdge}
	var answer []string
	var drainErr error
	for {
		batch, err := ait.Next(rctx)
		if err != nil {
			drainErr = fmt.Errorf("exec: %w", err)
			break
		}
		if batch == nil {
			break
		}
		if answer == nil {
			res.FirstAnswer = time.Since(start)
			faSpan.End(nil)
			met.Histogram(obs.MFirstAnswerSeconds).Observe(res.FirstAnswer.Seconds())
		}
		r.tr.add(batchBytes(batch))
		answer = append(answer, batch...)
	}
	_ = ait.Close()
	r.wg.Wait()

	r.mu.Lock()
	err := r.firstErr
	r.mu.Unlock()
	if err == nil {
		// All nodes finished cleanly; a drain-side cancellation still
		// truncates the answer and must fail the run honestly.
		err = drainErr
	}
	if answer == nil {
		// No batch arrived: close the first-answer phase with the outcome
		// (nil for a legitimately empty answer).
		faSpan.End(err)
		if err == nil {
			res.FirstAnswer = time.Since(start)
			met.Histogram(obs.MFirstAnswerSeconds).Observe(res.FirstAnswer.Seconds())
		}
	}
	if err == nil {
		st.setVar(p.Result, set.FromSorted(answer))
		res.Answer = st.vars[p.Result]
	}

	if e.Network != nil {
		// The pipeline is one big round: response time is the critical path
		// over the per-source k-lane schedules of the whole run's exchanges.
		log := e.Network.Log()
		if logStart > len(log) {
			logStart = len(log)
		}
		lanes, _, laneConns := e.exchangeGroups(log[logStart:])
		var critical time.Duration
		for name, durs := range lanes {
			if d := netsim.Makespan(durs, laneConns[name]); d > critical {
				critical = d
			}
		}
		res.ResponseTime = critical
	}

	res.PeakBytes = r.tr.high()
	e.mu.Lock()
	e.lastLoaded = st.loaded
	e.mu.Unlock()
	if e.Trace {
		sort.Slice(res.Trace, func(a, b int) bool { return res.Trace[a].Index < res.Trace[b].Index })
	}
	return res, err
}

// node runs one plan step as a dataflow node: execute the kind-specific
// body, then always close the output edges (EOF for consumers) and abandon
// the input edges (stop for producers), and account the step exactly like
// the materialized runStepRetry — step span, per-source metrics, result
// counters and trace entry.
func (r *streamRun) node(idx int, s plan.Step, ins []*streamEdge, outs []*streamEdge) {
	e := r.e
	// Spans and traces show the original step, not its SSA rename.
	text := r.p.StepString(r.p.Steps[idx])
	sctx, span := obs.StartSpan(r.ctx, obs.KindStep, text)
	isSource := s.IsSourceQuery()
	srcName := ""
	if isSource {
		srcName = e.Sources[s.Source].Name()
		span.SetAttr("source", srcName)
	}
	// A replicated source's failovers and hedges are attributed to this
	// node through context-carried call stats, as in the materialized path.
	var cs *fabric.CallStats
	if isSource {
		if _, ok := e.Sources[s.Source].(replicaSource); ok {
			cs = &fabric.CallStats{}
			sctx = fabric.WithCallStats(sctx, cs)
		}
	}

	em := newEmitter(outs)
	var agg queryStats
	err := r.execNode(sctx, s, ins, em, &agg)
	if errors.Is(err, errAbandoned) {
		// Nobody wants the rest of this stream — clean early completion.
		err = nil
	}
	if err != nil {
		err = fmt.Errorf("exec: %s: %w", text, err)
	}
	for _, ed := range outs {
		ed.closeSend()
	}
	for _, ed := range ins {
		ed.abandonNow()
	}
	span.End(err)

	met := obs.Meter(r.ctx)
	if isSource {
		met.Counter(obs.MSourceQueries, "source", srcName).Add(int64(agg.queries))
		met.Counter(obs.MCacheHits, "source", srcName).Add(int64(agg.hits))
		met.Counter(obs.MCacheMisses, "source", srcName).Add(int64(agg.misses))
		met.Counter(obs.MRetries, "source", srcName).Add(int64(agg.retries))
		if err != nil {
			met.Counter(obs.MStepErrors, "source", srcName).Inc()
		}
	}
	if em.batches > 0 {
		met.Counter(obs.MStreamBatches, "source", srcName).Add(int64(em.batches))
	}

	var failovers, hedges int
	if cs != nil {
		failovers = int(cs.Failovers.Load())
		hedges = int(cs.Hedges.Load())
	}
	r.mu.Lock()
	r.res.SourceQueries += agg.queries
	r.res.CacheHits += agg.hits
	r.res.CacheMisses += agg.misses
	r.res.Retries += agg.retries
	r.res.Failovers += failovers
	r.res.Hedges += hedges
	if err != nil && (r.res.FailedStep < 0 || idx < r.res.FailedStep) {
		r.res.FailedStep = idx
	}
	if e.Trace {
		tr := StepTrace{Index: idx, Text: text, Queries: agg.queries, CacheHits: agg.hits, Retries: agg.retries, Errors: agg.errors, Failovers: failovers, Hedges: hedges}
		if err != nil {
			tr.Err = err.Error()
		} else {
			tr.OutItems = em.items
		}
		r.res.Trace = append(r.res.Trace, tr)
	}
	r.mu.Unlock()

	if err != nil {
		r.fail(err)
	}
}

// execNode dispatches on the step kind. Errors come back unwrapped; node
// adds the step prefix.
func (r *streamRun) execNode(ctx context.Context, s plan.Step, ins []*streamEdge, em *emitter, agg *queryStats) error {
	switch s.Kind {
	case plan.KindSelect:
		return r.selectNode(ctx, s, em, agg)
	case plan.KindSemijoin:
		return r.semijoinNode(ctx, s, ins, em, agg)
	case plan.KindBloomSemijoin:
		return r.bloomNode(ctx, s, ins, em, agg)
	case plan.KindLoad:
		return r.loadNode(ctx, s, em, agg)
	case plan.KindLocalSelect:
		return r.localSelectNode(ctx, s, ins, em)
	case plan.KindUnion, plan.KindIntersect, plan.KindDiff:
		return r.mergeNode(ctx, s, ins, em)
	default:
		return fmt.Errorf("unknown step kind %v", s.Kind)
	}
}

// selectNode streams sq(c, src) batch by batch. A cached selection is
// emitted without source traffic; a miss opens a chunked stream and, with
// a cache attached, collects the batches on the side so the completed
// selection can be cached for later runs. The whole-stream retry budget
// applies only while nothing has been emitted yet: once batches are
// downstream a transient mid-stream failure cannot be retried without
// re-emitting, so it fails the step (and the run stays honest).
func (r *streamRun) selectNode(ctx context.Context, s plan.Step, em *emitter, agg *queryStats) error {
	e := r.e
	src := e.Sources[s.Source]
	c := r.p.Conds[s.Cond]
	if out, ok := e.Cache.Select(src.Name(), c); ok {
		agg.hits++
		return em.emitSorted(ctx, out.Items(), e.batchSize())
	}
	var collected []string
	collect := e.Cache != nil
	emitted := false
	for attempt := 0; ; attempt++ {
		actx := ctx
		var asp *obs.Span
		if attempt > 0 {
			actx, asp = obs.StartSpan(ctx, obs.KindAttempt, fmt.Sprintf("attempt %d", attempt+1))
		}
		err := r.drainSelect(actx, s.Source, c, em, agg, &emitted, &collected, collect)
		asp.End(err)
		if err == nil {
			break
		}
		if errors.Is(err, errAbandoned) {
			return err
		}
		agg.errors++
		if emitted || attempt >= e.Retries || !source.IsTransient(err) {
			return err
		}
		if cerr := ctx.Err(); cerr != nil {
			return fmt.Errorf("source %s: %w", src.Name(), cerr)
		}
		agg.retries++
		collected = collected[:0]
	}
	if collect {
		e.Cache.PutSelect(src.Name(), c, set.FromSorted(collected))
	}
	return nil
}

// drainSelect is one attempt at streaming the selection: open, pull, emit.
// A scheduler slot brackets the open and each chunk pull — one slot per
// exchange — and is released before emitting, so backpressure never holds
// a source lane.
func (r *streamRun) drainSelect(ctx context.Context, j int, c cond.Cond, em *emitter, agg *queryStats, emitted *bool, collected *[]string, collect bool) error {
	e := r.e
	src := e.Sources[j]
	release, err := e.slot(ctx, j)
	if err != nil {
		return fmt.Errorf("source %s: %w", src.Name(), err)
	}
	it, err := source.OpenSelectStream(ctx, src, c, e.batchSize())
	release()
	agg.queries++
	agg.misses += boolToInt(e.Cache != nil)
	if err != nil {
		return err
	}
	defer it.Close()
	for {
		release, err := e.slot(ctx, j)
		if err != nil {
			return fmt.Errorf("source %s: %w", src.Name(), err)
		}
		batch, err := it.Next(ctx)
		release()
		if err != nil {
			return err
		}
		if batch == nil {
			return nil
		}
		if collect {
			*collected = append(*collected, batch...)
		}
		if err := em.emit(ctx, batch); err != nil {
			return err
		}
		*emitted = true
	}
}

// semijoinNode evaluates sjq(c, src, Y) incrementally: each input batch is
// one semijoin probe, issued as the batch arrives. Output order is
// preserved because a probe's matches are a subset of its input batch and
// batches arrive in increasing item order. Native semijoins retry per
// probe (nothing of a failed probe was emitted); emulated semijoins retry
// per binding inside emulatedSemijoin, exactly like the materialized path.
func (r *streamRun) semijoinNode(ctx context.Context, s plan.Step, ins []*streamEdge, em *emitter, agg *queryStats) error {
	e := r.e
	src := e.Sources[s.Source]
	c := r.p.Conds[s.Cond]
	caps := src.Caps()
	if !caps.NativeSemijoin && !caps.PassedBindings {
		return fmt.Errorf("source %s: semijoin not emulable: %w", src.Name(), source.ErrUnsupported)
	}
	in := &edgeIter{ed: ins[0]}
	defer in.Close()
	for {
		batch, err := in.Next(ctx)
		if err != nil {
			return err
		}
		if batch == nil {
			return nil
		}
		y := set.FromSorted(batch)
		var out set.Set
		if caps.NativeSemijoin {
			out, err = r.nativeProbe(ctx, s.Source, c, y, agg)
		} else {
			var qs queryStats
			out, qs, err = e.emulatedSemijoin(ctx, s.Source, c, y)
			agg.add(qs)
		}
		if err != nil {
			return err
		}
		if err := em.emit(ctx, out.Items()); err != nil {
			return err
		}
	}
}

// nativeProbe issues one native sjq for a single input batch with the
// whole-exchange transient-retry budget.
func (r *streamRun) nativeProbe(ctx context.Context, j int, c cond.Cond, y set.Set, agg *queryStats) (set.Set, error) {
	e := r.e
	for attempt := 0; ; attempt++ {
		actx := ctx
		var asp *obs.Span
		if attempt > 0 {
			actx, asp = obs.StartSpan(ctx, obs.KindAttempt, fmt.Sprintf("attempt %d", attempt+1))
		}
		out, qs, err := e.nativeSemijoin(actx, j, c, y)
		asp.End(err)
		agg.add(qs)
		if err == nil {
			return out, nil
		}
		agg.errors++
		if attempt >= e.Retries || !source.IsTransient(err) {
			return set.Set{}, err
		}
		if cerr := ctx.Err(); cerr != nil {
			return set.Set{}, fmt.Errorf("source %s: %w", e.Sources[j].Name(), cerr)
		}
		agg.retries++
	}
}

// bloomNode is a pipeline barrier: the Bloom filter needs the complete
// input set before the single filter exchange can be issued. The input is
// materialized (tracked as mediator memory for the node's lifetime), the
// filter probe retried like any whole exchange, and the exact result —
// positives restricted to the actual input — streamed out.
func (r *streamRun) bloomNode(ctx context.Context, s plan.Step, ins []*streamEdge, em *emitter, agg *queryStats) error {
	e := r.e
	src := e.Sources[s.Source]
	c := r.p.Conds[s.Cond]
	in, err := set.Collect(ctx, &edgeIter{ed: ins[0]})
	if err != nil {
		return err
	}
	if in.IsEmpty() {
		return nil
	}
	r.tr.add(in.Bytes())
	defer r.tr.release(in.Bytes())
	filter := bloom.FromItems(in.Items(), bloom.DefaultBitsPerItem)
	var positives set.Set
	for attempt := 0; ; attempt++ {
		actx := ctx
		var asp *obs.Span
		if attempt > 0 {
			actx, asp = obs.StartSpan(ctx, obs.KindAttempt, fmt.Sprintf("attempt %d", attempt+1))
		}
		var release func()
		release, err = e.slot(actx, s.Source)
		if err != nil {
			asp.End(err)
			return fmt.Errorf("source %s: %w", src.Name(), err)
		}
		positives, err = src.SemijoinBloom(actx, c, filter)
		release()
		agg.queries++
		asp.End(err)
		if err == nil {
			break
		}
		agg.errors++
		if attempt >= e.Retries || !source.IsTransient(err) {
			return err
		}
		if cerr := ctx.Err(); cerr != nil {
			return fmt.Errorf("source %s: %w", src.Name(), cerr)
		}
		agg.retries++
	}
	return em.emitSorted(ctx, positives.Intersect(in).Items(), e.batchSize())
}

// loadNode fetches the source's full contents. The relation is stored in
// st.loaded (and its bytes tracked for the rest of the run) before any
// batch is emitted, so a downstream local-selection node that synchronizes
// on this node's edge always finds the relation present.
func (r *streamRun) loadNode(ctx context.Context, s plan.Step, em *emitter, agg *queryStats) error {
	e := r.e
	src := e.Sources[s.Source]
	for attempt := 0; ; attempt++ {
		actx := ctx
		var asp *obs.Span
		if attempt > 0 {
			actx, asp = obs.StartSpan(ctx, obs.KindAttempt, fmt.Sprintf("attempt %d", attempt+1))
		}
		release, err := e.slot(actx, s.Source)
		if err != nil {
			asp.End(err)
			return fmt.Errorf("source %s: %w", src.Name(), err)
		}
		rel, err := src.Load(actx)
		release()
		agg.queries++
		asp.End(err)
		if err == nil {
			r.st.mu.Lock()
			r.st.loaded[s.Out] = rel
			r.st.mu.Unlock()
			r.tr.add(rel.Bytes())
			return em.emitSorted(ctx, rel.Items(), e.batchSize())
		}
		agg.errors++
		if attempt >= e.Retries || !source.IsTransient(err) {
			return err
		}
		if cerr := ctx.Err(); cerr != nil {
			return fmt.Errorf("source %s: %w", src.Name(), cerr)
		}
		agg.retries++
	}
}

// localSelectNode applies a plan condition to loaded source contents. The
// input edge carries the load node's item stream purely as a completion
// signal — the relation itself (with its non-merge attributes) lives in
// st.loaded — so the node drains the edge, then selects locally for free.
func (r *streamRun) localSelectNode(ctx context.Context, s plan.Step, ins []*streamEdge, em *emitter) error {
	in := &edgeIter{ed: ins[0]}
	defer in.Close()
	for {
		batch, err := in.Next(ctx)
		if err != nil {
			return err
		}
		if batch == nil {
			break
		}
	}
	r.st.mu.Lock()
	rel, ok := r.st.loaded[s.In[0]]
	r.st.mu.Unlock()
	if !ok {
		return fmt.Errorf("%q is not loaded source contents", s.In[0])
	}
	out, err := localSelect(rel, r.p, s.Cond)
	if err != nil {
		return err
	}
	return em.emitSorted(ctx, out.Items(), r.e.batchSize())
}

// mergeNode runs the local set algebra incrementally: the input edges are
// adapted to set.Iter and fed through the merge operators, which exploit
// the sorted-batch invariant to produce output as soon as enough input has
// arrived. MergeIntersect's short-circuit (any input exhausted ⇒ done)
// closes the remaining inputs, which abandons their edges and stops the
// producers — the streaming form of the materialized empty-set
// short-circuit.
func (r *streamRun) mergeNode(ctx context.Context, s plan.Step, ins []*streamEdge, em *emitter) error {
	bs := r.e.batchSize()
	its := make([]set.Iter, len(ins))
	for k := range ins {
		its[k] = &edgeIter{ed: ins[k]}
	}
	var m set.Iter
	switch s.Kind {
	case plan.KindUnion:
		m = set.MergeUnion(bs, its...)
	case plan.KindIntersect:
		m = set.MergeIntersect(bs, its...)
	default:
		m = set.MergeDiff(bs, its[0], its[1])
	}
	defer m.Close()
	for {
		batch, err := m.Next(ctx)
		if err != nil {
			return err
		}
		if batch == nil {
			return nil
		}
		if err := em.emit(ctx, batch); err != nil {
			return err
		}
	}
}
