package exec

import (
	"fmt"
	"strings"
	"time"
)

// StepTrace records what one plan step did at execution time — the
// EXPLAIN-ANALYZE view of a fusion-query plan.
type StepTrace struct {
	// Index is the step's position in the plan (0-based).
	Index int
	// Text is the step in the paper's notation.
	Text string
	// OutItems is the cardinality of the step's output set (or loaded
	// relation's distinct items). Zero when the step failed.
	OutItems int
	// Queries is the number of charged source queries the step issued
	// (more than one for emulated semijoins, zero for local steps and
	// short-circuited semijoins), including failed attempts.
	Queries int
	// CacheHits is how many source queries the answer cache avoided for
	// this step (zero without a cache).
	CacheHits int
	// Retries counts the step's transient-failure re-issues: whole-step
	// re-attempts, or per-binding re-attempts for emulated semijoins.
	Retries int
	// Errors counts attempts that failed — every retry implies one error,
	// and a step that ultimately failed has one more error than retries.
	Errors int
	// Failovers counts how many times the step's exchanges moved to another
	// replica of a logical source (zero for unreplicated sources).
	Failovers int
	// Hedges counts backup exchanges the replica fabric launched for this
	// step when the primary exceeded its latency deadline.
	Hedges int
	// Err is the step's final error text; empty when the step succeeded.
	// Failed steps appear in the trace with the work they charged.
	Err string
	// Elapsed is the simulated time the step's exchanges took (zero
	// without a network or for local steps). In parallel batches it is
	// attributed per step from the network exchange log.
	Elapsed time.Duration
}

// RenderTrace formats a trace as an aligned table. Steps that failed are
// footnoted with their error text below the table.
func RenderTrace(traces []StepTrace) string {
	if len(traces) == 0 {
		return ""
	}
	width := 0
	for _, tr := range traces {
		if len(tr.Text) > width {
			width = len(tr.Text)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%3s  %-*s  %9s  %7s  %6s  %7s  %6s  %9s  %6s  %12s\n",
		"#", width, "step", "out items", "queries", "cached", "retries", "errors", "failovers", "hedges", "elapsed")
	for _, tr := range traces {
		fmt.Fprintf(&b, "%3d  %-*s  %9d  %7d  %6d  %7d  %6d  %9d  %6d  %12v\n",
			tr.Index+1, width, tr.Text, tr.OutItems, tr.Queries, tr.CacheHits,
			tr.Retries, tr.Errors, tr.Failovers, tr.Hedges, tr.Elapsed.Round(time.Microsecond))
	}
	for _, tr := range traces {
		if tr.Err != "" {
			fmt.Fprintf(&b, "  ! step %d failed: %s\n", tr.Index+1, tr.Err)
		}
	}
	return b.String()
}
