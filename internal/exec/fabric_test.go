package exec

import (
	"context"
	"testing"
	"time"

	"fusionq/internal/fabric"
	"fusionq/internal/netsim"
	"fusionq/internal/optimizer"
	"fusionq/internal/source"
	"fusionq/internal/stats"
	"fusionq/internal/workload"
)

// replicatedDMVSetup wires the DMV scenario with source 0 replaced by a
// two-replica logical fabric source: two physical endpoints over the same
// relation, each with its own network link, behind the original logical
// name — so plans and statistics stay replica-oblivious.
func replicatedDMVSetup(t *testing.T, opts fabric.Options) (*optimizer.Problem, []source.Source, *netsim.Network, *fabric.Logical) {
	t.Helper()
	sc := workload.DMV()
	network := netsim.NewNetwork(1)
	link := netsim.Link{Latency: 10 * time.Millisecond, BytesPerSec: 10000, RequestOverhead: 5 * time.Millisecond}
	srcs := make([]source.Source, len(sc.Sources))
	profiles := make([]stats.SourceProfile, len(sc.Sources))
	var logical *fabric.Logical
	for j, raw := range sc.Sources {
		w := raw.(*source.Wrapper)
		if j == 0 {
			var eps []*fabric.Endpoint
			for _, suffix := range []string{"-a", "-b"} {
				rep := source.NewWrapper(w.Name()+suffix, source.NewRowBackend(sc.Relations[j]), w.Caps())
				network.SetLink(rep.Name(), link)
				eps = append(eps, fabric.NewEndpoint(source.Instrument(rep, network), 1))
			}
			var err error
			logical, err = fabric.NewLogical(w.Name(), eps, opts)
			if err != nil {
				t.Fatal(err)
			}
			srcs[j] = logical
		} else {
			network.SetLink(w.Name(), link)
			srcs[j] = source.Instrument(w, network)
		}
		profiles[j] = stats.ProfileFromLink(w.Name(), link, 3, stats.SupportOf(srcs[j].Caps()))
	}
	table, err := stats.BuildFromSources(context.Background(), sc.Conds, srcs, profiles)
	if err != nil {
		t.Fatal(err)
	}
	network.Reset() // statistics gathering is free
	// Rebuild the logical source so the run starts with fresh health and
	// breakers: an unobserved endpoint scores zero and is always preferred,
	// so both replicas deterministically receive traffic within the first
	// two logical exchanges regardless of statistics-phase warmup.
	logical, err = fabric.NewLogical(logical.Name(), logical.Endpoints(), opts)
	if err != nil {
		t.Fatal(err)
	}
	srcs[0] = logical
	pr := &optimizer.Problem{Conds: sc.Conds, Sources: sc.SourceNames(), Table: table}
	return pr, srcs, network, logical
}

// TestFailoverAcrossReplicasMidQuery is the acceptance scenario: one replica
// of a two-replica logical source is killed by scripted churn, and the
// query still completes with the FULL answer — the fabric fails the dead
// endpoint's exchanges over to its sibling.
func TestFailoverAcrossReplicasMidQuery(t *testing.T) {
	pr, srcs, network, logical := replicatedDMVSetup(t, fabric.Options{ExploreProb: -1, DisableHedging: true})
	network.ScheduleChurn([]netsim.ChurnEvent{
		{At: 0, Source: logical.Endpoints()[0].Name(), Kind: netsim.ChurnKill},
	})
	res, err := optimizer.Filter(pr)
	if err != nil {
		t.Fatal(err)
	}
	ex := &Executor{Sources: srcs, Network: network, Trace: true, Retries: 1}
	got, err := ex.Run(context.Background(), res.Plan)
	if err != nil {
		t.Fatalf("run with one dead replica: %v\nplan:\n%s", err, res.Plan)
	}
	if !got.Answer.Equal(dmvAnswer) {
		t.Fatalf("answer = %v, want the full answer %v", got.Answer, dmvAnswer)
	}
	if got.Failovers < 1 {
		t.Fatalf("Failovers = %d, want >= 1 (dead replica must have been tried)", got.Failovers)
	}
	if st := logical.Stats(); st.Failovers < 1 {
		t.Fatalf("logical stats failovers = %d, want >= 1", st.Failovers)
	}
	if got.FailedStep != -1 {
		t.Fatalf("FailedStep = %d, want -1 for a fully repaired run", got.FailedStep)
	}
	// The sequential accounting identity must survive failover: endpoint
	// exchanges collapse into the logical source's single lane.
	if got.TotalWork <= 0 || got.ResponseTime != got.TotalWork {
		t.Fatalf("sequential timing = total %v / response %v, want equal", got.TotalWork, got.ResponseTime)
	}
	// The trace attributes every failover to some step.
	sum := 0
	for _, tr := range got.Trace {
		sum += tr.Failovers
	}
	if sum != got.Failovers {
		t.Fatalf("trace failovers sum = %d, result reports %d", sum, got.Failovers)
	}
}

// TestFailoverAcrossReplicasStreaming runs the same dead-replica scenario
// through the streaming dataflow. A stream that lands on the dead endpoint
// dies mid-stream (stream opens carry no exchange; the first chunk does),
// which by design surfaces to the executor's whole-stream retry rather
// than failing over inside the fabric — the retry re-picks, the dead
// endpoint accumulates breaker failures, and selection converges on the
// survivor. The run must still produce the full answer.
func TestFailoverAcrossReplicasStreaming(t *testing.T) {
	pr, srcs, network, logical := replicatedDMVSetup(t, fabric.Options{ExploreProb: -1, DisableHedging: true})
	network.ScheduleChurn([]netsim.ChurnEvent{
		{At: 0, Source: logical.Endpoints()[0].Name(), Kind: netsim.ChurnKill},
	})
	res, err := optimizer.Filter(pr)
	if err != nil {
		t.Fatal(err)
	}
	// Budget: the dead endpoint can absorb at most FailureThreshold (3)
	// consecutive attempts before its breaker opens and every later pick
	// goes to the survivor.
	ex := &Executor{Sources: srcs, Network: network, Streaming: true, Retries: 3}
	got, err := ex.Run(context.Background(), res.Plan)
	if err != nil {
		t.Fatalf("streaming run with one dead replica: %v\nplan:\n%s", err, res.Plan)
	}
	if !got.Answer.Equal(dmvAnswer) {
		t.Fatalf("answer = %v, want the full answer %v", got.Answer, dmvAnswer)
	}
	if got.Retries+got.Failovers < 1 {
		t.Fatalf("retries=%d failovers=%d: the dead replica was never exercised", got.Retries, got.Failovers)
	}
}

// TestReplicatedSourceHealthySteadyState checks the no-churn baseline: a
// replicated roster behaves exactly like a flat one — full answer, no
// failovers, sequential identity intact.
func TestReplicatedSourceHealthySteadyState(t *testing.T) {
	pr, srcs, network, logical := replicatedDMVSetup(t, fabric.Options{ExploreProb: -1, DisableHedging: true})
	res, err := optimizer.SJA(pr)
	if err != nil {
		t.Fatal(err)
	}
	ex := &Executor{Sources: srcs, Network: network}
	got, err := ex.Run(context.Background(), res.Plan)
	if err != nil {
		t.Fatalf("run: %v\nplan:\n%s", err, res.Plan)
	}
	if !got.Answer.Equal(dmvAnswer) {
		t.Fatalf("answer = %v, want %v", got.Answer, dmvAnswer)
	}
	if got.Failovers != 0 || got.Hedges != 0 {
		t.Fatalf("healthy roster reported failovers=%d hedges=%d", got.Failovers, got.Hedges)
	}
	if !logical.Alive() {
		t.Fatal("healthy logical source reports not alive")
	}
	if got.TotalWork <= 0 || got.ResponseTime != got.TotalWork {
		t.Fatalf("sequential timing = total %v / response %v, want equal", got.TotalWork, got.ResponseTime)
	}
}
