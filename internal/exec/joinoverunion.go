package exec

import (
	"context"
	"fmt"
	"math"

	"fusionq/internal/optimizer"
	"fusionq/internal/set"
)

// RunJoinOverUnion executes a fusion query the way the Section 5
// resolution-based systems do: distribute the m-way join over the n-way
// union into n^m SPJ subqueries, evaluate each subquery with per-position
// selection queries, and union the subquery answers. With memoize=false
// every subquery issues its own selections — the m·n^m blowup the paper
// warns about; with memoize=true the mediator caches sq(c_i, R_j) results,
// which is exactly the common-subexpression elimination that collapses the
// strategy to filter-plan cost.
//
// maxSubqueries guards against accidental n^m explosions; 0 means the
// default of 100000.
func (e *Executor) RunJoinOverUnion(ctx context.Context, pr *optimizer.Problem, memoize bool, maxSubqueries int) (*Result, error) {
	if err := pr.Validate(); err != nil {
		return nil, err
	}
	if len(pr.Sources) != len(e.Sources) {
		return nil, fmt.Errorf("exec: problem has %d sources, executor has %d", len(pr.Sources), len(e.Sources))
	}
	m, n := len(pr.Conds), len(pr.Sources)
	if maxSubqueries <= 0 {
		maxSubqueries = 100000
	}
	if total := math.Pow(float64(n), float64(m)); total > float64(maxSubqueries) {
		return nil, fmt.Errorf("exec: join-over-union would expand to %.0f subqueries (limit %d)", total, maxSubqueries)
	}

	res := &Result{Vars: map[string]set.Set{}, FailedStep: -1}
	memo := map[[2]int]set.Set{}
	fetch := func(ci, j int) (set.Set, error) {
		key := [2]int{ci, j}
		if memoize {
			if s, ok := memo[key]; ok {
				return s, nil
			}
		}
		out, err := e.Sources[j].Select(ctx, pr.Conds[ci])
		res.SourceQueries++
		if err != nil {
			return set.Set{}, err
		}
		if memoize {
			memo[key] = out
		}
		return out, nil
	}

	// Enumerate source assignments (j_1..j_m) in odometer order; each
	// subquery's answer is the intersection of its per-position selection
	// results.
	answer := set.Set{}
	assign := make([]int, m)
	for {
		sub := set.Set{}
		for i := 0; i < m; i++ {
			part, err := fetch(i, assign[i])
			if err != nil {
				return res, err
			}
			if i == 0 {
				sub = part
			} else {
				sub = sub.Intersect(part)
			}
			if sub.IsEmpty() {
				// The remaining positions cannot resurrect this subquery,
				// but the naive strategy still issues their selections.
				if !memoize {
					for k := i + 1; k < m; k++ {
						if _, err := fetch(k, assign[k]); err != nil {
							return res, err
						}
					}
				}
				break
			}
		}
		answer = answer.Union(sub)

		// Advance the odometer.
		pos := m - 1
		for ; pos >= 0; pos-- {
			assign[pos]++
			if assign[pos] < n {
				break
			}
			assign[pos] = 0
		}
		if pos < 0 {
			break
		}
	}
	res.Answer = answer
	res.Vars["answer"] = answer
	return res, nil
}
