package exec

import (
	"context"
	"testing"

	"fusionq/internal/optimizer"
	"fusionq/internal/plan"
	"fusionq/internal/source"
)

// TestRunCombinedMatchesTwoPhase: combined mode must produce exactly the
// answer and records that Run + FetchAnswer produce.
func TestRunCombinedMatchesTwoPhase(t *testing.T) {
	for _, algo := range []func(*optimizer.Problem) (optimizer.Result, error){
		optimizer.Filter, optimizer.SJA, optimizer.SJAPlus,
	} {
		pr, srcs, network := dmvSetup(t, nil)
		res, err := algo(pr)
		if err != nil {
			t.Fatal(err)
		}
		twoEx := &Executor{Sources: srcs, Network: network}
		twoRun, err := twoEx.Run(context.Background(), res.Plan)
		if err != nil {
			t.Fatal(err)
		}
		twoRecords, err := FetchAnswer(context.Background(), twoRun.Answer, srcs)
		if err != nil {
			t.Fatal(err)
		}

		pr2, srcs2, network2 := dmvSetup(t, nil)
		res2, err := algo(pr2)
		if err != nil {
			t.Fatal(err)
		}
		comEx := &Executor{Sources: srcs2, Network: network2}
		comRun, records, err := comEx.RunCombined(context.Background(), res2.Plan)
		if err != nil {
			t.Fatalf("RunCombined: %v\nplan:\n%s", err, res2.Plan)
		}
		if !comRun.Answer.Equal(twoRun.Answer) {
			t.Fatalf("combined answer %v != two-phase %v", comRun.Answer, twoRun.Answer)
		}
		if records.Len() != twoRecords.Len() {
			t.Fatalf("combined records %d != two-phase %d\nplan:\n%s", records.Len(), twoRecords.Len(), res2.Plan)
		}
	}
}

// TestRunCombinedSkipsCoveredFetches: sources whose final-round record
// query covered the whole answer need no phase-two fetch.
func TestRunCombinedSkipsCoveredFetches(t *testing.T) {
	pr, srcs, _ := dmvSetup(t, nil)
	res, err := optimizer.Filter(pr)
	if err != nil {
		t.Fatal(err)
	}
	ex := &Executor{Sources: srcs}
	_, records, err := ex.RunCombined(context.Background(), res.Plan)
	if err != nil {
		t.Fatal(err)
	}
	if records.Len() != 5 {
		t.Fatalf("records = %d tuples, want 5", records.Len())
	}
	// The final round asked each source for sp-matching records; fetches
	// are only needed for answer items whose sp match was elsewhere.
	// R1: sp match {T21}; answer {J55, T21} → fetch {J55} (1 fetch).
	// R2: sp match {J55, T11}; fetch {T21} (1 fetch).
	// R3: sp match {S07, T21}; fetch {J55} (1 fetch).
	total := Counters(t, srcs)
	if total.FetchQueries != 3 {
		t.Fatalf("fetch queries = %d, want 3 (only uncovered items fetched)", total.FetchQueries)
	}
}

// Counters sums the instrumented counters across sources.
func Counters(t *testing.T, srcs []source.Source) source.Counters {
	t.Helper()
	var total source.Counters
	for _, s := range srcs {
		total.Add(s.(*source.Instrumented).Counters())
	}
	return total
}

func TestRunCombinedEmptyAnswer(t *testing.T) {
	pr, srcs, _ := dmvSetup(t, nil)
	p := &plan.Plan{
		Conds:   pr.Conds,
		Sources: pr.Sources,
		Steps: []plan.Step{
			{Kind: plan.KindSelect, Out: "A", Cond: 0, Source: 0},
			{Kind: plan.KindDiff, Out: "Z", Cond: -1, Source: -1, In: []string{"A", "A"}},
			{Kind: plan.KindIntersect, Out: "R", Cond: -1, Source: -1, In: []string{"Z", "A"}},
		},
		Result: "R",
	}
	ex := &Executor{Sources: srcs}
	run, records, err := ex.RunCombined(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if !run.Answer.IsEmpty() || records.Len() != 0 {
		t.Fatalf("empty-answer combined run: %v / %d records", run.Answer, records.Len())
	}
}

func TestRunCombinedNoSourceQueries(t *testing.T) {
	pr, srcs, _ := dmvSetup(t, nil)
	p := &plan.Plan{
		Conds:   pr.Conds,
		Sources: pr.Sources,
		Steps: []plan.Step{
			{Kind: plan.KindLoad, Out: "F1", Cond: -1, Source: 0},
		},
		Result: "F1",
	}
	ex := &Executor{Sources: srcs}
	if _, _, err := ex.RunCombined(context.Background(), p); err == nil {
		t.Fatal("plan without condition queries should be rejected")
	}
}

func TestRunCombinedEmulatedSemijoinFallsBack(t *testing.T) {
	caps := []source.Capabilities{
		{PassedBindings: true},
		{PassedBindings: true},
		{PassedBindings: true},
	}
	pr, srcs, _ := dmvSetup(t, caps)
	res, err := optimizer.SJA(pr)
	if err != nil {
		t.Fatal(err)
	}
	ex := &Executor{Sources: srcs}
	run, records, err := ex.RunCombined(context.Background(), res.Plan)
	if err != nil {
		t.Fatalf("RunCombined with emulated semijoins: %v\nplan:\n%s", err, res.Plan)
	}
	if !run.Answer.Equal(dmvAnswer) {
		t.Fatalf("answer = %v", run.Answer)
	}
	if records.Len() != 5 {
		t.Fatalf("records = %d, want 5", records.Len())
	}
}

func TestRunCombinedParallel(t *testing.T) {
	pr, srcs, network := dmvSetup(t, nil)
	res, err := optimizer.Filter(pr)
	if err != nil {
		t.Fatal(err)
	}
	ex := &Executor{Sources: srcs, Network: network, Parallel: true}
	run, records, err := ex.RunCombined(context.Background(), res.Plan)
	if err != nil {
		t.Fatalf("parallel combined: %v", err)
	}
	if !run.Answer.Equal(dmvAnswer) || records.Len() != 5 {
		t.Fatalf("answer %v, records %d", run.Answer, records.Len())
	}
}

func TestRunCombinedWithLoadedSources(t *testing.T) {
	pr, srcs, _ := dmvSetup(t, nil)
	res, err := optimizer.SJAPlus(pr) // tiny DMV sources: SJA+ loads them
	if err != nil {
		t.Fatal(err)
	}
	hasLoad := false
	for _, s := range res.Plan.Steps {
		if s.Kind == plan.KindLoad {
			hasLoad = true
		}
	}
	if !hasLoad {
		t.Skip("SJA+ did not load any source in this configuration")
	}
	ex := &Executor{Sources: srcs}
	run, records, err := ex.RunCombined(context.Background(), res.Plan)
	if err != nil {
		t.Fatal(err)
	}
	if !run.Answer.Equal(dmvAnswer) || records.Len() != 5 {
		t.Fatalf("answer %v, records %d", run.Answer, records.Len())
	}
	// Loaded sources must not be fetched from: their contents are local.
	total := Counters(t, srcs)
	if total.FetchQueries != 0 {
		t.Fatalf("fetch queries = %d, want 0 (all sources loaded)", total.FetchQueries)
	}
}
