package exec

import (
	"context"
	"fmt"
	"math"
	"time"

	"fusionq/internal/bloom"
	"fusionq/internal/netsim"
	"fusionq/internal/obs"
	"fusionq/internal/optimizer"
	"fusionq/internal/plan"
	"fusionq/internal/set"
	"fusionq/internal/source"
)

// RunAdaptive executes a fusion query with mid-query re-optimization: the
// static algorithms of Section 3 commit to an ordering and to per-source
// method choices using estimated running-set sizes, but at run time the
// mediator knows |X_i| exactly after every round. Adaptive execution defers
// each decision until its inputs are measured:
//
//   - the next condition is the unprocessed one whose round costs least
//     against the measured |X|;
//   - each source's method (selection / semijoin / Bloom semijoin) is chosen
//     with the measured |X| as the semijoin-set size;
//   - a drained running set ends the query immediately.
//
// This is the runtime counterpart of the paper's observation that SJA is
// only a heuristic under condition dependence (Section 1): when estimates
// mislead, measured cardinalities correct course round by round
// (experiment E15). The executed steps are recorded as a plan in Result
// form for inspection.
//
// Like Run, a failed or cancelled execution returns a non-nil Result whose
// counters report the work already performed, with the error wrapping the
// cause.
func (e *Executor) RunAdaptive(ctx context.Context, pr *optimizer.Problem) (*Result, *plan.Plan, error) {
	if err := pr.Validate(); err != nil {
		return nil, nil, err
	}
	if len(pr.Sources) != len(e.Sources) {
		return nil, nil, fmt.Errorf("exec: problem has %d sources, executor has %d", len(pr.Sources), len(e.Sources))
	}
	for j, name := range pr.Sources {
		if e.Sources[j].Name() != name {
			return nil, nil, fmt.Errorf("exec: problem source %d is %q but executor has %q", j, name, e.Sources[j].Name())
		}
	}
	m, n := len(pr.Conds), len(pr.Sources)
	t := pr.Table

	executed := &plan.Plan{Conds: pr.Conds, Sources: pr.Sources, Class: "adaptive"}
	res := &Result{Vars: map[string]set.Set{}, FailedStep: -1}
	placed := make([]bool, m)
	conns := make([]int, len(e.Sources))
	for j := range e.Sources {
		conns[j] = e.connsFor(j)
	}
	e.sched = newScheduler(conns)
	if e.Network != nil {
		pre := e.Network.Stats().TotalTime
		defer func() {
			if d := e.Network.Stats().TotalTime - pre; d > 0 {
				res.TotalWork = d
			}
			if !e.Parallel {
				res.ResponseTime = res.TotalWork
			}
		}()
	}

	record := func(s plan.Step, out set.Set, qs queryStats) {
		executed.Steps = append(executed.Steps, s)
		res.Vars[s.Out] = out
		res.SourceQueries += qs.queries
		res.CacheHits += qs.hits
		res.CacheMisses += qs.misses
		res.Retries += qs.retries
	}
	// charge flushes a failed query's statistics: the attempts reached the
	// source, so the partial Result must report them.
	charge := func(qs queryStats) {
		res.SourceQueries += qs.queries
		res.CacheHits += qs.hits
		res.CacheMisses += qs.misses
		res.Retries += qs.retries
	}

	// query issues one adaptive source query. Adaptive rounds issue their
	// per-source queries one source at a time, so in parallel mode the
	// response time is the per-call makespan — an emulated semijoin's binding
	// fan-out over the source's connections is the only intra-call
	// parallelism.
	query := func(ci, j int, method optimizer.Method, x set.Set) (set.Set, queryStats, error) {
		logStart := 0
		if e.Parallel && e.Network != nil {
			logStart = len(e.Network.Log())
		}
		out, qs, err := e.sourceQuery(ctx, pr, ci, j, method, x)
		if e.Parallel && e.Network != nil {
			var durs []time.Duration
			// Clamp: a concurrent query's planning phase may have reset the
			// shared exchange log since logStart was captured.
			log := e.Network.Log()
			if logStart > len(log) {
				logStart = len(log)
			}
			for _, ex := range log[logStart:] {
				durs = append(durs, ex.Elapsed)
			}
			res.ResponseTime += netsim.Makespan(durs, e.connsFor(j))
		}
		return out, qs, err
	}

	// First round: cheapest estimated selections relative to the set they
	// leave behind (most selective first, cost as tiebreak).
	first, bestCost, bestCard := -1, math.Inf(1), math.Inf(1)
	for i := 0; i < m; i++ {
		c := 0.0
		for j := 0; j < n; j++ {
			c += t.Sq[i][j]
		}
		card := t.FirstRoundCard(i)
		if card < bestCard || (card == bestCard && c < bestCost) {
			first, bestCost, bestCard = i, c, card
		}
	}
	placed[first] = true
	parts := make([]set.Set, n)
	var names []string
	for j := 0; j < n; j++ {
		out, qs, err := query(first, j, optimizer.MethodSelect, set.Set{})
		if err != nil {
			charge(qs)
			return res, executed, err
		}
		name := fmt.Sprintf("X1%d", j+1)
		record(plan.Step{Kind: plan.KindSelect, Out: name, Cond: first, Source: j}, out, qs)
		parts[j] = out
		names = append(names, name)
	}
	x := set.UnionAll(parts...)
	record(plan.Step{Kind: plan.KindUnion, Out: "X1", Cond: -1, Source: -1, In: names}, x, queryStats{})

	for r := 2; r <= m && !x.IsEmpty(); r++ {
		if err := ctx.Err(); err != nil {
			return res, executed, fmt.Errorf("exec: adaptive: %w", err)
		}
		// Pick the next condition against the MEASURED |X|.
		measured := float64(x.Len())
		nextIdx, nextCost := -1, math.Inf(1)
		var nextMethods []optimizer.Method
		for i := 0; i < m; i++ {
			if placed[i] {
				continue
			}
			roundCost := 0.0
			methods := make([]optimizer.Method, n)
			for j := 0; j < n; j++ {
				method, cost := optimizer.BestMethod(t, i, j, measured)
				methods[j] = method
				roundCost += cost
			}
			if roundCost < nextCost {
				nextIdx, nextCost, nextMethods = i, roundCost, methods
			}
		}
		placed[nextIdx] = true

		var selVars, sjVars []string
		var selSets, sjSets []set.Set
		for j := 0; j < n; j++ {
			method := nextMethods[j]
			name := fmt.Sprintf("X%d%d", r, j+1)
			out, qs, err := query(nextIdx, j, method, x)
			if err != nil {
				charge(qs)
				return res, executed, err
			}
			switch method {
			case optimizer.MethodSelect:
				record(plan.Step{Kind: plan.KindSelect, Out: name, Cond: nextIdx, Source: j}, out, qs)
				selVars = append(selVars, name)
				selSets = append(selSets, out)
			case optimizer.MethodBloom:
				record(plan.Step{Kind: plan.KindBloomSemijoin, Out: name, Cond: nextIdx, Source: j, In: []string{fmt.Sprintf("X%d", r-1)}}, out, qs)
				sjVars = append(sjVars, name)
				sjSets = append(sjSets, out)
			default:
				record(plan.Step{Kind: plan.KindSemijoin, Out: name, Cond: nextIdx, Source: j, In: []string{fmt.Sprintf("X%d", r-1)}}, out, qs)
				sjVars = append(sjVars, name)
				sjSets = append(sjSets, out)
			}
		}
		all := append(append([]string(nil), selVars...), sjVars...)
		u := set.UnionAll(append(append([]set.Set(nil), selSets...), sjSets...)...)
		out := fmt.Sprintf("X%d", r)
		record(plan.Step{Kind: plan.KindUnion, Out: out, Cond: -1, Source: -1, In: all}, u, queryStats{})
		if len(selVars) > 0 {
			u = u.Intersect(x)
			record(plan.Step{Kind: plan.KindIntersect, Out: out, Cond: -1, Source: -1, In: []string{out, fmt.Sprintf("X%d", r-1)}}, u, queryStats{})
		}
		x = u
	}
	// A drained set answers all remaining conditions vacuously with ∅.
	res.Answer = x
	executed.Result = executed.Steps[len(executed.Steps)-1].Out
	return res, executed, nil
}

// sourceQuery issues one adaptive-round query with the chosen method through
// the cache and scheduler, honoring the executor's retry budget. Emulated
// semijoins retry per binding inside semijoinQuery, so the whole-call retry
// budget is zeroed for them; failed attempts stay charged in the returned
// stats. Context errors are never transient, so cancellation stops the
// retry loop at once. Each call is a step span (re-attempts get attempt
// spans beneath it) and emits the same per-source counters as planned-mode
// steps.
func (e *Executor) sourceQuery(ctx context.Context, pr *optimizer.Problem, ci, j int, method optimizer.Method, x set.Set) (set.Set, queryStats, error) {
	src := e.Sources[j]
	budget := e.Retries
	if method != optimizer.MethodSelect && method != optimizer.MethodBloom {
		if caps := src.Caps(); !caps.NativeSemijoin && caps.PassedBindings {
			budget = 0
		}
	}
	sctx, span := obs.StartSpan(ctx, obs.KindStep, fmt.Sprintf("adaptive %s(c%d) @ %s", method, ci+1, src.Name()))
	span.SetAttr("source", src.Name())

	var acc queryStats
	var out set.Set
	var err error
	for attempt := 0; ; attempt++ {
		actx := sctx
		var asp *obs.Span
		if attempt > 0 {
			actx, asp = obs.StartSpan(sctx, obs.KindAttempt, fmt.Sprintf("attempt %d", attempt+1))
		}
		var qs queryStats
		out, qs, err = e.attemptSourceQuery(actx, pr, ci, j, method, x)
		asp.End(err)
		acc.add(qs)
		if err == nil {
			break
		}
		acc.errors++
		if attempt >= budget || !source.IsTransient(err) {
			err = fmt.Errorf("exec: adaptive %s at %s: %w", method, src.Name(), err)
			break
		}
		acc.retries++
	}
	span.End(err)

	met := obs.Meter(ctx)
	met.Counter(obs.MSourceQueries, "source", src.Name()).Add(int64(acc.queries))
	met.Counter(obs.MCacheHits, "source", src.Name()).Add(int64(acc.hits))
	met.Counter(obs.MCacheMisses, "source", src.Name()).Add(int64(acc.misses))
	met.Counter(obs.MRetries, "source", src.Name()).Add(int64(acc.retries))
	if err != nil {
		met.Counter(obs.MStepErrors, "source", src.Name()).Inc()
		return set.Set{}, acc, err
	}
	return out, acc, nil
}

// attemptSourceQuery performs one attempt of an adaptive-round query.
func (e *Executor) attemptSourceQuery(ctx context.Context, pr *optimizer.Problem, ci, j int, method optimizer.Method, x set.Set) (set.Set, queryStats, error) {
	src := e.Sources[j]
	switch method {
	case optimizer.MethodSelect:
		return e.selectQuery(ctx, j, pr.Conds[ci])
	case optimizer.MethodBloom:
		filter := bloom.FromItems(x.Items(), bloom.DefaultBitsPerItem)
		release, err := e.slot(ctx, j)
		if err != nil {
			return set.Set{}, queryStats{}, fmt.Errorf("source %s: %w", src.Name(), err)
		}
		positives, err := src.SemijoinBloom(ctx, pr.Conds[ci], filter)
		release()
		qs := queryStats{queries: 1}
		if err != nil {
			return set.Set{}, qs, err
		}
		return positives.Intersect(x), qs, nil
	default:
		return e.semijoinQuery(ctx, j, pr.Conds[ci], x)
	}
}
