package exec

import (
	"context"
	"sync"
	"testing"

	"fusionq/internal/cond"
	"fusionq/internal/set"
	"fusionq/internal/source"
	"fusionq/internal/workload"
)

func mustCond(t *testing.T, s string) cond.Cond {
	t.Helper()
	c, err := cond.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCacheSelectRoundTrip(t *testing.T) {
	c := NewCache()
	cd := mustCond(t, "V = 'dui'")
	if _, ok := c.Select("r1", cd); ok {
		t.Fatal("empty cache answered a selection")
	}
	c.PutSelect("r1", cd, set.New("a", "b"))
	out, ok := c.Select("r1", cd)
	if !ok || !out.Equal(set.New("a", "b")) {
		t.Fatalf("Select = %v, %v; want cached {a b}", out, ok)
	}
	// Keyed by source: the same condition at another source still misses.
	if _, ok := c.Select("r2", cd); ok {
		t.Fatal("selection leaked across sources")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 1 hit, 2 misses", st)
	}
}

func TestCacheMembershipTriState(t *testing.T) {
	c := NewCache()
	cd := mustCond(t, "V = 'sp'")
	if _, known := c.Lookup("r1", cd, "x"); known {
		t.Fatal("empty cache knows a verdict")
	}
	c.PutMembership("r1", cd, "x", true)
	c.PutMembership("r1", cd, "y", false)
	if match, known := c.Lookup("r1", cd, "x"); !known || !match {
		t.Fatalf("x = %v,%v; want true,true", match, known)
	}
	if match, known := c.Lookup("r1", cd, "y"); !known || match {
		t.Fatalf("y = %v,%v; want false,true", match, known)
	}
	if _, known := c.Lookup("r1", cd, "z"); known {
		t.Fatal("unprobed item z should stay unknown")
	}
}

// TestCacheSelectionAnswersAllMemberships checks the completeness rule: a
// cached selection result is a complete answer, so it decides membership for
// every item — absent means "does not satisfy".
func TestCacheSelectionAnswersAllMemberships(t *testing.T) {
	c := NewCache()
	cd := mustCond(t, "V = 'dui'")
	c.PutSelect("r1", cd, set.New("a"))
	if match, known := c.Lookup("r1", cd, "a"); !known || !match {
		t.Fatalf("a = %v,%v; want member", match, known)
	}
	if match, known := c.Lookup("r1", cd, "nope"); !known || match {
		t.Fatalf("nope = %v,%v; selection completeness should answer false", match, known)
	}
}

func TestCachePartition(t *testing.T) {
	c := NewCache()
	cd := mustCond(t, "V = 'sp'")
	c.PutMembership("r1", cd, "t", true)
	c.PutMembership("r1", cd, "f", false)
	knownTrue, unknown := c.Partition("r1", cd, set.New("t", "f", "u"))
	if !knownTrue.Equal(set.New("t")) {
		t.Fatalf("knownTrue = %v, want {t}", knownTrue)
	}
	// f is known-false: dropped entirely, not re-probed.
	if !unknown.Equal(set.New("u")) {
		t.Fatalf("unknown = %v, want {u}", unknown)
	}
}

func TestCachePutSemijoin(t *testing.T) {
	c := NewCache()
	cd := mustCond(t, "V = 'sp'")
	y, out := set.New("a", "b", "c"), set.New("b")
	c.PutSemijoin("r1", cd, y, out)
	for _, tc := range []struct {
		item string
		want bool
	}{{"a", false}, {"b", true}, {"c", false}} {
		if match, known := c.Lookup("r1", cd, tc.item); !known || match != tc.want {
			t.Fatalf("%s = %v,%v; want %v,true", tc.item, match, known, tc.want)
		}
	}
}

func TestCacheClearAndLen(t *testing.T) {
	c := NewCache()
	cd := mustCond(t, "V = 'dui'")
	c.PutSelect("r1", cd, set.New("a"))
	c.PutMembership("r2", cd, "x", true)
	c.PutMembership("r2", cd, "y", false)
	if sel, mem := c.Len(); sel != 1 || mem != 2 {
		t.Fatalf("Len = %d,%d; want 1,2", sel, mem)
	}
	c.Clear()
	if sel, mem := c.Len(); sel != 0 || mem != 0 {
		t.Fatalf("Len after Clear = %d,%d; want 0,0", sel, mem)
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("stats after Clear = %+v, want zeros", st)
	}
}

// TestNilCacheIsNoop checks the nil-receiver contract the executor relies
// on: every consultation misses and every store is dropped, silently.
func TestNilCacheIsNoop(t *testing.T) {
	var c *Cache
	cd := mustCond(t, "V = 'dui'")
	if _, ok := c.Select("r1", cd); ok {
		t.Fatal("nil cache hit a selection")
	}
	c.PutSelect("r1", cd, set.New("a"))
	c.PutMembership("r1", cd, "a", true)
	c.PutSemijoin("r1", cd, set.New("a"), set.New("a"))
	if _, known := c.Lookup("r1", cd, "a"); known {
		t.Fatal("nil cache knows a verdict")
	}
	knownTrue, unknown := c.Partition("r1", cd, set.New("a", "b"))
	if !knownTrue.IsEmpty() || !unknown.Equal(set.New("a", "b")) {
		t.Fatalf("nil Partition = %v,%v; want nothing known", knownTrue, unknown)
	}
	if st := c.Stats(); st != (CacheStats{}) {
		t.Fatalf("nil Stats = %+v, want zero", st)
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := NewCache()
	cd := mustCond(t, "V = 'sp'")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				item := workload.ItemName(i % 50)
				c.PutMembership("r1", cd, item, i%2 == 0)
				c.Lookup("r1", cd, item)
				c.Partition("r1", cd, set.New(item))
			}
		}(w)
	}
	wg.Wait()
	if _, mem := c.Len(); mem != 50 {
		t.Fatalf("memberships = %d, want 50", mem)
	}
}

// countingSource tallies the queries that reach the wrapped source.
type countingSource struct {
	source.Source
	mu       sync.Mutex
	selects  int
	bindings int
	semis    int
}

func (s *countingSource) Select(ctx context.Context, c cond.Cond) (set.Set, error) {
	s.mu.Lock()
	s.selects++
	s.mu.Unlock()
	return s.Source.Select(ctx, c)
}

func (s *countingSource) SelectBinding(ctx context.Context, c cond.Cond, item string) (bool, error) {
	s.mu.Lock()
	s.bindings++
	s.mu.Unlock()
	return s.Source.SelectBinding(ctx, c, item)
}

func (s *countingSource) Semijoin(ctx context.Context, c cond.Cond, y set.Set) (set.Set, error) {
	s.mu.Lock()
	s.semis++
	s.mu.Unlock()
	return s.Source.Semijoin(ctx, c, y)
}

// TestCachedSource checks the decorator used by long-lived endpoints: a
// repeated selection, binding, or fully-covered semijoin reaches the inner
// source only once.
func TestCachedSource(t *testing.T) {
	sc := workload.DMV()
	inner := &countingSource{Source: sc.Sources[0]}
	cs := NewCachedSource(inner, NewCache())
	cd := sc.Conds[0]

	first, err := cs.Select(context.Background(), cd)
	if err != nil {
		t.Fatal(err)
	}
	second, err := cs.Select(context.Background(), cd)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Equal(second) {
		t.Fatalf("cached selection %v differs from first %v", second, first)
	}
	if inner.selects != 1 {
		t.Fatalf("inner selects = %d, want 1 (second answered from cache)", inner.selects)
	}

	// The cached selection is complete, so any binding probe and any
	// semijoin over probed items answer locally too.
	if !first.IsEmpty() {
		item := first.Items()[0]
		ok, err := cs.SelectBinding(context.Background(), cd, item)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("binding %s should match — it came from the selection", item)
		}
		if inner.bindings != 0 {
			t.Fatalf("inner bindings = %d, want 0", inner.bindings)
		}
		out, err := cs.Semijoin(context.Background(), cd, first)
		if err != nil {
			t.Fatal(err)
		}
		if !out.Equal(first) {
			t.Fatalf("semijoin = %v, want %v", out, first)
		}
		if inner.semis != 0 {
			t.Fatalf("inner semijoins = %d, want 0 (all items known)", inner.semis)
		}
	}
}
