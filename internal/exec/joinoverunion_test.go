package exec

import (
	"context"
	"testing"

	"fusionq/internal/optimizer"
)

func TestJoinOverUnionMatchesFusionAnswer(t *testing.T) {
	pr, srcs, _ := dmvSetup(t, nil)
	ex := &Executor{Sources: srcs}

	naive, err := ex.RunJoinOverUnion(context.Background(), pr, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !naive.Answer.Equal(dmvAnswer) {
		t.Fatalf("naive answer = %v, want %v", naive.Answer, dmvAnswer)
	}
	// m=2, n=3: the naive strategy issues m·n^m = 18 selections.
	if naive.SourceQueries != 18 {
		t.Fatalf("naive queries = %d, want 18", naive.SourceQueries)
	}

	memo, err := ex.RunJoinOverUnion(context.Background(), pr, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !memo.Answer.Equal(dmvAnswer) {
		t.Fatalf("memoized answer = %v", memo.Answer)
	}
	// With CSE the distinct selections are m·n = 6 — the filter plan.
	if memo.SourceQueries != 6 {
		t.Fatalf("memoized queries = %d, want 6", memo.SourceQueries)
	}

	// Cross-check against the fusion-aware pipeline.
	res, err := optimizer.SJA(pr)
	if err != nil {
		t.Fatal(err)
	}
	fusion, err := ex.Run(context.Background(), res.Plan)
	if err != nil {
		t.Fatal(err)
	}
	if !fusion.Answer.Equal(naive.Answer) {
		t.Fatalf("fusion answer %v != join-over-union %v", fusion.Answer, naive.Answer)
	}
}

func TestJoinOverUnionBlowupGuard(t *testing.T) {
	pr, srcs, _ := dmvSetup(t, nil)
	ex := &Executor{Sources: srcs}
	if _, err := ex.RunJoinOverUnion(context.Background(), pr, false, 5); err == nil {
		t.Fatal("guard should reject 9 subqueries with limit 5")
	}
}
