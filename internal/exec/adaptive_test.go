package exec

import (
	"context"
	"testing"

	"fusionq/internal/cond"
	"fusionq/internal/optimizer"
	"fusionq/internal/source"
	"fusionq/internal/stats"
	"fusionq/internal/workload"
)

func TestRunAdaptiveDMV(t *testing.T) {
	pr, srcs, network := dmvSetup(t, nil)
	ex := &Executor{Sources: srcs, Network: network}
	res, executed, err := ex.RunAdaptive(context.Background(), pr)
	if err != nil {
		t.Fatalf("RunAdaptive: %v", err)
	}
	if !res.Answer.Equal(dmvAnswer) {
		t.Fatalf("answer = %v, want %v\nexecuted:\n%s", res.Answer, dmvAnswer, executed)
	}
	if err := executed.Validate(); err != nil {
		t.Fatalf("executed plan invalid: %v\n%s", err, executed)
	}
	if res.SourceQueries == 0 || res.TotalWork <= 0 {
		t.Fatalf("accounting missing: %+v", res)
	}
}

// TestRunAdaptiveMatchesGroundTruthUnderCorrelation: the regime adaptivity
// exists for — estimates mislead, measured cardinalities do not.
func TestRunAdaptiveMatchesGroundTruthUnderCorrelation(t *testing.T) {
	sc, err := workload.Synth(workload.SynthConfig{
		Seed: 51, NumSources: 4, TuplesPerSource: 400, Universe: 250,
		Selectivity: []float64{0.1, 0.3, 0.5},
		Correlation: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	profiles := stats.UniformProfiles(sc.SourceNames(), stats.SourceProfile{
		PerQuery: 5, PerItemSent: 0.01, PerItemRecv: 0.01, PerByteLoad: 0.001,
		Support: stats.SemijoinNative,
	})
	table, err := stats.BuildFromSources(context.Background(), sc.Conds, sc.Sources, profiles)
	if err != nil {
		t.Fatal(err)
	}
	pr := &optimizer.Problem{Conds: sc.Conds, Sources: sc.SourceNames(), Table: table}
	ex := &Executor{Sources: sc.Sources}

	adaptive, _, err := ex.RunAdaptive(context.Background(), pr)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check against the static SJA plan's answer.
	sja, err := optimizer.SJA(pr)
	if err != nil {
		t.Fatal(err)
	}
	staticRun, err := ex.Run(context.Background(), sja.Plan)
	if err != nil {
		t.Fatal(err)
	}
	if !adaptive.Answer.Equal(staticRun.Answer) {
		t.Fatalf("adaptive answer %v != static %v", adaptive.Answer, staticRun.Answer)
	}
}

func TestRunAdaptiveEmptyFirstRoundShortCircuits(t *testing.T) {
	sc, err := workload.Synth(workload.SynthConfig{
		Seed: 52, NumSources: 3, TuplesPerSource: 100, Universe: 80,
		Selectivity: []float64{0.5, 0.5, 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Replace the head condition with one that cannot match: the first
	// adaptive round drains the running set immediately.
	conds := append([]cond.Cond(nil), sc.Conds...)
	conds[0] = cond.MustParse("A1 < 0")
	profiles := stats.UniformProfiles(sc.SourceNames(), stats.SourceProfile{
		PerQuery: 5, PerItemSent: 0.01, PerItemRecv: 0.01, PerByteLoad: 0.001,
		Support: stats.SemijoinNative,
	})
	table, err := stats.BuildFromSources(context.Background(), conds, sc.Sources, profiles)
	if err != nil {
		t.Fatal(err)
	}
	pr := &optimizer.Problem{Conds: conds, Sources: sc.SourceNames(), Table: table}
	ex := &Executor{Sources: sc.Sources}
	res, _, err := ex.RunAdaptive(context.Background(), pr)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Answer.IsEmpty() {
		t.Fatalf("answer = %v, want empty", res.Answer)
	}
	// First round issued n queries; a drained set must stop everything else.
	if res.SourceQueries != 3 {
		t.Fatalf("SourceQueries = %d, want 3 (remaining rounds skipped)", res.SourceQueries)
	}
}

func TestRunAdaptiveWithFlakySources(t *testing.T) {
	pr, _, _ := dmvSetup(t, nil)
	sc := workload.DMV()
	srcs := make([]source.Source, len(sc.Sources))
	for j, raw := range sc.Sources {
		srcs[j] = source.NewFlaky(raw, 0.3, int64(j+7))
	}
	ex := &Executor{Sources: srcs, Retries: 30}
	res, _, err := ex.RunAdaptive(context.Background(), pr)
	if err != nil {
		t.Fatalf("adaptive with retries: %v", err)
	}
	if !res.Answer.Equal(dmvAnswer) {
		t.Fatalf("answer = %v", res.Answer)
	}
}

func TestRunAdaptiveValidatesInputs(t *testing.T) {
	pr, srcs, _ := dmvSetup(t, nil)
	ex := &Executor{Sources: srcs[:1]}
	if _, _, err := ex.RunAdaptive(context.Background(), pr); err == nil {
		t.Fatal("source count mismatch should fail")
	}
}
