package exec

import (
	"context"
	"strings"
	"testing"
	"time"

	"fusionq/internal/netsim"
	"fusionq/internal/optimizer"
	"fusionq/internal/plan"
	"fusionq/internal/set"
	"fusionq/internal/source"
	"fusionq/internal/stats"
	"fusionq/internal/workload"
)

// dmvSetup wires the DMV scenario to instrumented sources over a simulated
// network and builds the optimization problem.
func dmvSetup(t *testing.T, caps []source.Capabilities) (*optimizer.Problem, []source.Source, *netsim.Network) {
	t.Helper()
	sc := workload.DMV()
	network := netsim.NewNetwork(1)
	srcs := make([]source.Source, len(sc.Sources))
	profiles := make([]stats.SourceProfile, len(sc.Sources))
	link := netsim.Link{Latency: 10 * time.Millisecond, BytesPerSec: 10000, RequestOverhead: 5 * time.Millisecond}
	for j, raw := range sc.Sources {
		w := raw.(*source.Wrapper)
		inner := w
		if caps != nil {
			inner = source.NewWrapper(w.Name(), source.NewRowBackend(sc.Relations[j]), caps[j])
		}
		network.SetLink(w.Name(), link)
		srcs[j] = source.Instrument(inner, network)
		profiles[j] = stats.ProfileFromLink(w.Name(), link, 3, stats.SupportOf(inner.Caps()))
	}
	table, err := stats.BuildFromSources(context.Background(), sc.Conds, srcs, profiles)
	if err != nil {
		t.Fatal(err)
	}
	network.Reset() // statistics gathering is free
	for _, s := range srcs {
		s.(*source.Instrumented).ResetCounters()
	}
	pr := &optimizer.Problem{Conds: sc.Conds, Sources: sc.SourceNames(), Table: table}
	return pr, srcs, network
}

var dmvAnswer = set.New("J55", "T21")

// TestDMVAllOptimizers runs the paper's Section 1 query end-to-end through
// every optimizer and checks they all produce the answer {J55, T21}.
func TestDMVAllOptimizers(t *testing.T) {
	algos := map[string]func(*optimizer.Problem) (optimizer.Result, error){
		"filter":     optimizer.Filter,
		"sj":         optimizer.SJ,
		"sja":        optimizer.SJA,
		"greedy-sj":  optimizer.GreedySJ,
		"greedy-sja": optimizer.GreedySJA,
		"sja+":       optimizer.SJAPlus,
		"greedy+":    optimizer.GreedySJAPlus,
	}
	for name, algo := range algos {
		t.Run(name, func(t *testing.T) {
			pr, srcs, network := dmvSetup(t, nil)
			res, err := algo(pr)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			ex := &Executor{Sources: srcs, Network: network}
			got, err := ex.Run(context.Background(), res.Plan)
			if err != nil {
				t.Fatalf("%s: run: %v\nplan:\n%s", name, err, res.Plan)
			}
			if !got.Answer.Equal(dmvAnswer) {
				t.Fatalf("%s: answer = %v, want %v\nplan:\n%s", name, got.Answer, dmvAnswer, res.Plan)
			}
			if got.SourceQueries == 0 {
				t.Fatalf("%s: no source queries recorded", name)
			}
			if got.TotalWork <= 0 || got.ResponseTime != got.TotalWork {
				t.Fatalf("%s: sequential timing = %v/%v", name, got.TotalWork, got.ResponseTime)
			}
		})
	}
}

// TestDMVHeterogeneousCapabilities mixes native, emulated and
// selection-only sources; the SJA plan must still be executable and correct.
func TestDMVHeterogeneousCapabilities(t *testing.T) {
	caps := []source.Capabilities{
		{NativeSemijoin: true, PassedBindings: true},
		{PassedBindings: true},
		{},
	}
	pr, srcs, network := dmvSetup(t, caps)
	res, err := optimizer.SJA(pr)
	if err != nil {
		t.Fatal(err)
	}
	ex := &Executor{Sources: srcs, Network: network}
	got, err := ex.Run(context.Background(), res.Plan)
	if err != nil {
		t.Fatalf("run: %v\nplan:\n%s", err, res.Plan)
	}
	if !got.Answer.Equal(dmvAnswer) {
		t.Fatalf("answer = %v, want %v", got.Answer, dmvAnswer)
	}
	// The selection-only source must never receive a semijoin step.
	for _, s := range res.Plan.Steps {
		if s.Kind == plan.KindSemijoin && s.Source == 2 {
			t.Fatalf("semijoin routed to selection-only source:\n%s", res.Plan)
		}
	}
}

// TestFilterAndSJAAgreeOnSynthetic cross-checks plan classes on a larger
// synthetic workload: every optimizer's plan must compute the same answer
// as the filter plan.
func TestFilterAndSJAAgreeOnSynthetic(t *testing.T) {
	sc, err := workload.Synth(workload.SynthConfig{
		Seed: 42, NumSources: 4, TuplesPerSource: 300, Universe: 150,
		Selectivity: []float64{0.1, 0.5, 0.8},
		Backend:     workload.BackendMixed,
		Caps: []source.Capabilities{
			{NativeSemijoin: true, PassedBindings: true},
			{PassedBindings: true},
			{NativeSemijoin: true},
			{},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	profiles := stats.UniformProfiles(sc.SourceNames(), stats.SourceProfile{
		PerQuery: 10, PerItemSent: 0.5, PerItemRecv: 0.5, PerByteLoad: 0.001,
	})
	for j, src := range sc.Sources {
		profiles[j].Support = stats.SupportOf(src.Caps())
	}
	table, err := stats.BuildFromSources(context.Background(), sc.Conds, sc.Sources, profiles)
	if err != nil {
		t.Fatal(err)
	}
	pr := &optimizer.Problem{Conds: sc.Conds, Sources: sc.SourceNames(), Table: table}
	ex := &Executor{Sources: sc.Sources}

	fres, err := optimizer.Filter(pr)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ex.Run(context.Background(), fres.Plan)
	if err != nil {
		t.Fatal(err)
	}
	for name, algo := range map[string]func(*optimizer.Problem) (optimizer.Result, error){
		"sj": optimizer.SJ, "sja": optimizer.SJA, "sja+": optimizer.SJAPlus, "greedy-sja": optimizer.GreedySJA,
	} {
		res, err := algo(pr)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := ex.Run(context.Background(), res.Plan)
		if err != nil {
			t.Fatalf("%s: %v\nplan:\n%s", name, err, res.Plan)
		}
		if !got.Answer.Equal(want.Answer) {
			t.Fatalf("%s: answer %v != filter answer %v", name, got.Answer, want.Answer)
		}
	}
}

// TestParallelModeReducesResponseTime checks the Section 6 future-work
// executor: concurrent rounds keep total work identical but shrink the
// simulated response time.
func TestParallelModeReducesResponseTime(t *testing.T) {
	pr, srcs, network := dmvSetup(t, nil)
	res, err := optimizer.Filter(pr) // 6 independent queries in 2 rounds
	if err != nil {
		t.Fatal(err)
	}

	seq := &Executor{Sources: srcs, Network: network}
	seqRes, err := seq.Run(context.Background(), res.Plan)
	if err != nil {
		t.Fatal(err)
	}

	// Fresh counters for the parallel run.
	pr2, srcs2, network2 := dmvSetup(t, nil)
	res2, err := optimizer.Filter(pr2)
	if err != nil {
		t.Fatal(err)
	}
	par := &Executor{Sources: srcs2, Network: network2, Parallel: true}
	parRes, err := par.Run(context.Background(), res2.Plan)
	if err != nil {
		t.Fatal(err)
	}

	if !parRes.Answer.Equal(seqRes.Answer) {
		t.Fatalf("parallel answer %v != sequential %v", parRes.Answer, seqRes.Answer)
	}
	if parRes.TotalWork != seqRes.TotalWork {
		t.Fatalf("total work changed: %v vs %v", parRes.TotalWork, seqRes.TotalWork)
	}
	if parRes.ResponseTime >= seqRes.ResponseTime {
		t.Fatalf("parallel response %v not below sequential %v", parRes.ResponseTime, seqRes.ResponseTime)
	}
}

func TestRunRejectsMismatchedSources(t *testing.T) {
	pr, srcs, _ := dmvSetup(t, nil)
	res, err := optimizer.Filter(pr)
	if err != nil {
		t.Fatal(err)
	}
	ex := &Executor{Sources: srcs[:2]}
	if _, err := ex.Run(context.Background(), res.Plan); err == nil {
		t.Fatal("source count mismatch should fail")
	}
	// Wrong order.
	ex = &Executor{Sources: []source.Source{srcs[1], srcs[0], srcs[2]}}
	if _, err := ex.Run(context.Background(), res.Plan); err == nil {
		t.Fatal("source name mismatch should fail")
	}
}

func TestRunRejectsInvalidPlan(t *testing.T) {
	_, srcs, _ := dmvSetup(t, nil)
	ex := &Executor{Sources: srcs}
	bad := &plan.Plan{Result: "X"}
	if _, err := ex.Run(context.Background(), bad); err == nil {
		t.Fatal("invalid plan should fail")
	}
}

func TestLocalSelectRequiresLoadedContents(t *testing.T) {
	pr, srcs, _ := dmvSetup(t, nil)
	p := &plan.Plan{
		Conds:   pr.Conds,
		Sources: pr.Sources,
		Steps: []plan.Step{
			{Kind: plan.KindSelect, Out: "A", Cond: 0, Source: 0},
			{Kind: plan.KindLocalSelect, Out: "B", Cond: 0, Source: -1, In: []string{"A"}},
		},
		Result: "B",
	}
	ex := &Executor{Sources: srcs}
	if _, err := ex.Run(context.Background(), p); err == nil || !strings.Contains(err.Error(), "loaded") {
		t.Fatalf("err = %v, want loaded-contents error", err)
	}
}

func TestLoadAndLocalSelectExecution(t *testing.T) {
	pr, srcs, _ := dmvSetup(t, nil)
	p := &plan.Plan{
		Conds:   pr.Conds,
		Sources: pr.Sources,
		Steps: []plan.Step{
			{Kind: plan.KindLoad, Out: "F1", Cond: -1, Source: 0},
			{Kind: plan.KindLocalSelect, Out: "X11", Cond: 0, Source: -1, In: []string{"F1"}},
		},
		Result: "X11",
	}
	ex := &Executor{Sources: srcs}
	got, err := ex.Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if want := set.New("J55", "T80"); !got.Answer.Equal(want) {
		t.Fatalf("local select = %v, want %v", got.Answer, want)
	}
	if got.SourceQueries != 1 {
		t.Fatalf("SourceQueries = %d, want 1 (only the load)", got.SourceQueries)
	}
}

func TestDiffExecution(t *testing.T) {
	pr, srcs, _ := dmvSetup(t, nil)
	p := &plan.Plan{
		Conds:   pr.Conds,
		Sources: pr.Sources,
		Steps: []plan.Step{
			{Kind: plan.KindSelect, Out: "A", Cond: 0, Source: 0}, // {J55, T80}
			{Kind: plan.KindSelect, Out: "B", Cond: 0, Source: 1}, // {T21}
			{Kind: plan.KindUnion, Out: "U", Cond: -1, Source: -1, In: []string{"A", "B"}},
			{Kind: plan.KindDiff, Out: "D", Cond: -1, Source: -1, In: []string{"U", "A"}},
		},
		Result: "D",
	}
	ex := &Executor{Sources: srcs}
	got, err := ex.Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if want := set.New("T21"); !got.Answer.Equal(want) {
		t.Fatalf("diff = %v, want %v", got.Answer, want)
	}
}

func TestEmulatedSemijoinCountsBindingQueries(t *testing.T) {
	caps := []source.Capabilities{
		{PassedBindings: true},
		{PassedBindings: true},
		{PassedBindings: true},
	}
	pr, srcs, _ := dmvSetup(t, caps)
	p := &plan.Plan{
		Conds:   pr.Conds,
		Sources: pr.Sources,
		Steps: []plan.Step{
			{Kind: plan.KindSelect, Out: "A", Cond: 0, Source: 0}, // {J55, T80}
			{Kind: plan.KindSemijoin, Out: "B", Cond: 1, Source: 1, In: []string{"A"}},
		},
		Result: "B",
	}
	ex := &Executor{Sources: srcs}
	got, err := ex.Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if want := set.New("J55"); !got.Answer.Equal(want) {
		t.Fatalf("emulated semijoin = %v, want %v", got.Answer, want)
	}
	// 1 selection + 2 binding queries.
	if got.SourceQueries != 3 {
		t.Fatalf("SourceQueries = %d, want 3", got.SourceQueries)
	}
}

func TestFetchAnswerTwoPhase(t *testing.T) {
	_, srcs, _ := dmvSetup(t, nil)
	rel, err := FetchAnswer(context.Background(), dmvAnswer, srcs)
	if err != nil {
		t.Fatal(err)
	}
	// J55 has 2 violations (R1 dui, R2 sp); T21 has 3 (R1 sp, R2 dui, R3 sp).
	if rel.Len() != 5 {
		t.Fatalf("fetched %d tuples, want 5:\n%s", rel.Len(), rel)
	}
	empty, err := FetchAnswer(context.Background(), set.New(), srcs)
	if err != nil || empty.Len() != 0 {
		t.Fatalf("empty answer fetch = %v, %v", empty.Len(), err)
	}
	if _, err := FetchAnswer(context.Background(), dmvAnswer, nil); err == nil {
		t.Fatal("no sources should fail")
	}
}

// TestEmptySemijoinShortCircuit: a semijoin over an empty running set is
// answered at the mediator without contacting the source — the runtime
// counterpart of the cost model's "no benefit in querying for nothing".
func TestEmptySemijoinShortCircuit(t *testing.T) {
	pr, srcs, network := dmvSetup(t, nil)
	p := &plan.Plan{
		Conds:   pr.Conds,
		Sources: pr.Sources,
		Steps: []plan.Step{
			// No driver has violation 'zz', so the running set drains.
			{Kind: plan.KindSelect, Out: "A", Cond: 0, Source: 0},
			{Kind: plan.KindIntersect, Out: "E", Cond: -1, Source: -1, In: []string{"A", "A"}},
			{Kind: plan.KindDiff, Out: "Z", Cond: -1, Source: -1, In: []string{"A", "A"}}, // empty
			{Kind: plan.KindSemijoin, Out: "B", Cond: 1, Source: 1, In: []string{"Z"}},
			{Kind: plan.KindSemijoin, Out: "C", Cond: 1, Source: 2, In: []string{"B"}},
		},
		Result: "C",
	}
	ex := &Executor{Sources: srcs, Network: network}
	got, err := ex.Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Answer.IsEmpty() {
		t.Fatalf("answer = %v, want empty", got.Answer)
	}
	// Only the one selection reached a source; both semijoins were elided.
	if got.SourceQueries != 1 {
		t.Fatalf("SourceQueries = %d, want 1 (semijoins over empty sets elided)", got.SourceQueries)
	}
	if st := network.Stats(); st.Messages != 1 {
		t.Fatalf("network messages = %d, want 1", st.Messages)
	}
}

func TestExecutionTrace(t *testing.T) {
	pr, srcs, network := dmvSetup(t, nil)
	res, err := optimizer.SJA(pr)
	if err != nil {
		t.Fatal(err)
	}
	ex := &Executor{Sources: srcs, Network: network, Trace: true}
	got, err := ex.Run(context.Background(), res.Plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Trace) != len(res.Plan.Steps) {
		t.Fatalf("trace has %d entries for %d steps", len(got.Trace), len(res.Plan.Steps))
	}
	var queries int
	var elapsed time.Duration
	for i, tr := range got.Trace {
		if tr.Index != i {
			t.Fatalf("trace out of order at %d: %+v", i, tr)
		}
		if tr.Text == "" {
			t.Fatalf("trace entry %d has no text", i)
		}
		queries += tr.Queries
		elapsed += tr.Elapsed
	}
	if queries != got.SourceQueries {
		t.Fatalf("trace queries %d != result %d", queries, got.SourceQueries)
	}
	if elapsed != got.TotalWork {
		t.Fatalf("trace elapsed %v != total work %v", elapsed, got.TotalWork)
	}
	// The final step's output cardinality is the answer size.
	last := got.Trace[len(got.Trace)-1]
	if last.OutItems != got.Answer.Len() {
		t.Fatalf("final trace out items %d != answer %d", last.OutItems, got.Answer.Len())
	}
	rendered := RenderTrace(got.Trace)
	if !strings.Contains(rendered, "sq(c1, R1)") || !strings.Contains(rendered, "queries") {
		t.Fatalf("rendered trace missing content:\n%s", rendered)
	}
	if RenderTrace(nil) != "" {
		t.Fatal("empty trace should render empty")
	}
}

func TestBatchEndStopsAtDependency(t *testing.T) {
	pr, srcs, _ := dmvSetup(t, nil)
	ex := &Executor{Sources: srcs, Parallel: true}
	steps := []plan.Step{
		{Kind: plan.KindSelect, Out: "A", Cond: 0, Source: 0},
		{Kind: plan.KindSelect, Out: "B", Cond: 0, Source: 1},
		{Kind: plan.KindSemijoin, Out: "C", Cond: 1, Source: 2, In: []string{"A"}},
	}
	p := &plan.Plan{Conds: pr.Conds, Sources: pr.Sources, Steps: steps, Result: "C"}
	if end := ex.batchEnd(p, steps, 0); end != 2 {
		t.Fatalf("batchEnd = %d, want 2 (C depends on A)", end)
	}
}
