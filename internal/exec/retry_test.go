package exec

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"fusionq/internal/cond"
	"fusionq/internal/optimizer"
	"fusionq/internal/plan"
	"fusionq/internal/set"
	"fusionq/internal/source"
	"fusionq/internal/stats"
	"fusionq/internal/workload"
)

// flakySetup wraps the DMV sources with failure injection at the given
// rate.
func flakySetup(t *testing.T, rate float64) (*optimizer.Problem, []source.Source, []*source.Flaky) {
	t.Helper()
	sc := workload.DMV()
	srcs := make([]source.Source, len(sc.Sources))
	flakies := make([]*source.Flaky, len(sc.Sources))
	profiles := make([]stats.SourceProfile, len(sc.Sources))
	for j, raw := range sc.Sources {
		flakies[j] = source.NewFlaky(raw, rate, int64(100+j))
		srcs[j] = flakies[j]
		profiles[j] = stats.SourceProfile{
			Name: raw.Name(), PerQuery: 10, PerItemSent: 1, PerItemRecv: 1, PerByteLoad: 0.01,
			Support: stats.SupportOf(raw.Caps()),
		}
	}
	// Statistics gathering must not hit failures: gather from the raw
	// sources.
	table, err := stats.BuildFromSources(context.Background(), sc.Conds, sc.Sources, profiles)
	if err != nil {
		t.Fatal(err)
	}
	return &optimizer.Problem{Conds: sc.Conds, Sources: sc.SourceNames(), Table: table}, srcs, flakies
}

func TestRetriesSurviveTransientFailures(t *testing.T) {
	pr, srcs, flakies := flakySetup(t, 0.4)
	res, err := optimizer.Filter(pr)
	if err != nil {
		t.Fatal(err)
	}
	ex := &Executor{Sources: srcs, Retries: 25}
	got, err := ex.Run(context.Background(), res.Plan)
	if err != nil {
		t.Fatalf("run with retries: %v", err)
	}
	if !got.Answer.Equal(dmvAnswer) {
		t.Fatalf("answer = %v, want %v", got.Answer, dmvAnswer)
	}
	failed := 0
	for _, f := range flakies {
		failed += f.Failures()
	}
	if failed == 0 {
		t.Fatal("failure injection never fired; the test is vacuous")
	}
}

func TestNoRetriesFailsFast(t *testing.T) {
	pr, srcs, _ := flakySetup(t, 1.0) // always fails
	res, err := optimizer.Filter(pr)
	if err != nil {
		t.Fatal(err)
	}
	ex := &Executor{Sources: srcs}
	if _, err := ex.Run(context.Background(), res.Plan); !source.IsTransient(err) {
		t.Fatalf("err = %v, want transient failure", err)
	}
}

func TestRetryBudgetExhausts(t *testing.T) {
	pr, srcs, _ := flakySetup(t, 1.0)
	res, err := optimizer.Filter(pr)
	if err != nil {
		t.Fatal(err)
	}
	ex := &Executor{Sources: srcs, Retries: 3}
	if _, err := ex.Run(context.Background(), res.Plan); !source.IsTransient(err) {
		t.Fatalf("err = %v, want transient failure after budget", err)
	}
}

func TestRetriesInParallelMode(t *testing.T) {
	pr, srcs, _ := flakySetup(t, 0.3)
	res, err := optimizer.Filter(pr)
	if err != nil {
		t.Fatal(err)
	}
	ex := &Executor{Sources: srcs, Parallel: true, Retries: 25}
	got, err := ex.Run(context.Background(), res.Plan)
	if err != nil {
		t.Fatalf("parallel run with retries: %v", err)
	}
	if !got.Answer.Equal(dmvAnswer) {
		t.Fatalf("answer = %v, want %v", got.Answer, dmvAnswer)
	}
}

// stubTransient always fails with a bare transient error and never checks
// its context — the worst case for a retry loop, which must then notice the
// dead context itself between attempts.
type stubTransient struct {
	source.Source
	calls  int
	onCall func(int)
}

func (s *stubTransient) Select(ctx context.Context, c cond.Cond) (set.Set, error) {
	s.calls++
	if s.onCall != nil {
		s.onCall(s.calls)
	}
	return set.Set{}, fmt.Errorf("stub %s: select: %w", s.Name(), source.ErrTransient)
}

// TestRetryLoopStopsWhenContextDies pins that an enormous retry budget does
// not outlive the caller: when the context is cancelled mid-retry against a
// source that keeps returning bare transient errors, the loop must stop at
// the next attempt boundary with a cancellation-classified error instead of
// burning the remaining budget.
func TestRetryLoopStopsWhenContextDies(t *testing.T) {
	sc := workload.DMV()
	stub := &stubTransient{Source: sc.Sources[0]}
	p := &plan.Plan{
		Conds:   sc.Conds[:1],
		Sources: []string{sc.Sources[0].Name()},
		Steps:   []plan.Step{{Kind: plan.KindSelect, Out: "A", Cond: 0, Source: 0}},
		Result:  "A",
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stub.onCall = func(n int) {
		if n == 5 {
			cancel()
		}
	}
	ex := &Executor{Sources: []source.Source{stub}, Retries: 1 << 30}
	_, err := ex.Run(ctx, p)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
	if stub.calls > 6 {
		t.Fatalf("retry loop ran %d attempts after cancellation", stub.calls)
	}
	if stub.calls < 5 {
		t.Fatalf("cancellation hook never fired: only %d attempts", stub.calls)
	}
}

func TestNonTransientErrorsNotRetried(t *testing.T) {
	pr, srcs, _ := dmvSetup(t, []source.Capabilities{{}, {}, {}}) // selection-only
	p := &plan.Plan{
		Conds:   pr.Conds,
		Sources: pr.Sources,
		Steps: []plan.Step{
			{Kind: plan.KindSelect, Out: "A", Cond: 0, Source: 0},
			{Kind: plan.KindSemijoin, Out: "B", Cond: 1, Source: 1, In: []string{"A"}},
		},
		Result: "B",
	}
	ex := &Executor{Sources: srcs, Retries: 10}
	if _, err := ex.Run(context.Background(), p); err == nil {
		t.Fatal("unsupported semijoin should fail despite retries")
	}
}
