package exec

// This file implements per-source bounded-concurrency scheduling. Every
// source query a plan execution issues — a round's batch steps and the
// individual binding queries of an emulated semijoin alike — flows through
// a scheduler that caps the number of in-flight exchanges per source at
// that source's connection capacity (netsim.Link.MaxConns, overridable with
// Executor.Conns). This is the executor-side half of the response-time
// model: netsim.Makespan accounts the same k-lane schedule the scheduler
// enforces, and the plan/optimizer estimators rank orderings under it.

import (
	"context"
	"fmt"
	"sync"

	"fusionq/internal/cond"
	"fusionq/internal/obs"
	"fusionq/internal/set"
	"fusionq/internal/source"
)

// scheduler holds one slot pool per source; acquiring a slot admits one
// exchange to that source.
type scheduler struct {
	slots []chan struct{}
}

// newScheduler builds pools sized by conns (entries clamped to ≥1).
func newScheduler(conns []int) *scheduler {
	s := &scheduler{slots: make([]chan struct{}, len(conns))}
	for j, k := range conns {
		if k < 1 {
			k = 1
		}
		s.slots[j] = make(chan struct{}, k)
	}
	return s
}

// acquire blocks until source j has a free connection or ctx is done,
// returning the release function. A cancelled wait returns the ctx error
// unwrapped; callers attribute it.
func (s *scheduler) acquire(ctx context.Context, j int) (func(), error) {
	select {
	case s.slots[j] <- struct{}{}:
		return func() { <-s.slots[j] }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// selfScheduling marks sources that own their connection slots — the
// replica fabric queues exchanges per physical endpoint itself, so the
// executor's per-source scheduler steps aside for them.
type selfScheduling interface {
	SelfScheduling()
}

// slot admits one exchange to source j, returning a release function. With
// no scheduler (a bare Executor used outside Run) it degrades to a
// ctx-check: queries are issued one at a time anyway. Self-scheduling
// sources (the replica fabric) slot per physical endpoint internally and
// bypass the executor-side pool — double-slotting would serialize a
// logical source's replicas behind one lane. When the context carries a
// metrics registry, the wait and the admission are visible as the
// per-source queue-depth and lane-occupancy gauges.
func (e *Executor) slot(ctx context.Context, j int) (func(), error) {
	if _, ok := e.Sources[j].(selfScheduling); ok {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return func() {}, nil
	}
	if e.sched == nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return func() {}, nil
	}
	met := obs.Meter(ctx)
	name := e.Sources[j].Name()
	queue := met.Gauge(obs.MSchedQueueDepth, "source", name)
	queue.Inc()
	release, err := e.sched.acquire(ctx, j)
	queue.Dec()
	if err != nil {
		return nil, err
	}
	occ := met.Gauge(obs.MSchedLaneOccupancy, "source", name)
	occ.Inc()
	return func() {
		occ.Dec()
		release()
	}, nil
}

// connsFor resolves source j's connection capacity: the executor-wide
// override if set, else the network link's MaxConns, else 1. Sequential
// materialized mode is always single-connection — its accounting identity
// ResponseTime == TotalWork depends on it. Streaming mode is inherently
// concurrent (the dataflow nodes overlap), so it uses the parallel rule.
// A replicated source's capacity is the sum of its endpoints' pools (each
// endpoint enforces its own share inside the fabric); the Conns override
// applies per endpoint.
func (e *Executor) connsFor(j int) int {
	if !e.Parallel && !e.Streaming {
		return 1
	}
	if rc, ok := e.Sources[j].(replicaSource); ok {
		total := 0
		for _, k := range rc.ReplicaConns() {
			if e.Conns > 0 {
				k = e.Conns
			}
			total += k
		}
		if total < 1 {
			total = 1
		}
		return total
	}
	if e.Conns > 0 {
		return e.Conns
	}
	if e.Network != nil {
		return e.Network.ConnsFor(e.Sources[j].Name())
	}
	return 1
}

// queryStats tallies what one step's source interaction cost: charged
// queries (including failed attempts that reached the source), cache
// consultations answered locally (hits) or referred to the source (misses),
// transient-failure re-issues (retries), and failed attempts (errors).
type queryStats struct {
	queries int
	hits    int
	misses  int
	retries int
	errors  int
}

// add accumulates o into q.
func (q *queryStats) add(o queryStats) {
	q.queries += o.queries
	q.hits += o.hits
	q.misses += o.misses
	q.retries += o.retries
	q.errors += o.errors
}

// selectQuery answers sq(c, src) through the cache and the scheduler.
func (e *Executor) selectQuery(ctx context.Context, j int, c cond.Cond) (set.Set, queryStats, error) {
	src := e.Sources[j]
	if out, ok := e.Cache.Select(src.Name(), c); ok {
		return out, queryStats{hits: 1}, nil
	}
	release, err := e.slot(ctx, j)
	if err != nil {
		return set.Set{}, queryStats{}, fmt.Errorf("source %s: %w", src.Name(), err)
	}
	out, err := src.Select(ctx, c)
	release()
	if err != nil {
		return set.Set{}, queryStats{queries: 1, misses: boolToInt(e.Cache != nil)}, err
	}
	e.Cache.PutSelect(src.Name(), c, out)
	return out, queryStats{queries: 1, misses: boolToInt(e.Cache != nil)}, nil
}

// semijoinQuery evaluates sjq(c, src, y) with the best mechanism the source
// supports (Section 2.3's emulation rule), consulting the cache first and
// bounding concurrency by the source's connection capacity.
func (e *Executor) semijoinQuery(ctx context.Context, j int, c cond.Cond, y set.Set) (set.Set, queryStats, error) {
	src := e.Sources[j]
	caps := src.Caps()
	switch {
	case caps.NativeSemijoin:
		return e.nativeSemijoin(ctx, j, c, y)
	case caps.PassedBindings:
		return e.emulatedSemijoin(ctx, j, c, y)
	default:
		return set.Set{}, queryStats{}, fmt.Errorf("source %s: semijoin not emulable: %w", src.Name(), source.ErrUnsupported)
	}
}

// nativeSemijoin issues one sjq exchange for the items the cache cannot
// answer; a fully cached set costs no exchange at all.
func (e *Executor) nativeSemijoin(ctx context.Context, j int, c cond.Cond, y set.Set) (set.Set, queryStats, error) {
	src := e.Sources[j]
	knownTrue, unknown := e.Cache.Partition(src.Name(), c, y)
	st := queryStats{hits: y.Len() - unknown.Len(), misses: unknown.Len()}
	if e.Cache == nil {
		st = queryStats{}
	}
	if e.Cache != nil && unknown.IsEmpty() {
		return knownTrue, st, nil
	}
	release, err := e.slot(ctx, j)
	if err != nil {
		return set.Set{}, st, fmt.Errorf("source %s: %w", src.Name(), err)
	}
	out, err := src.Semijoin(ctx, c, unknown)
	release()
	st.queries = 1
	if err != nil {
		return set.Set{}, st, err
	}
	e.Cache.PutSemijoin(src.Name(), c, unknown, out)
	return out.Union(knownTrue), st, nil
}

// emulatedSemijoin implements a semijoin as passed-binding selections, one
// per item the cache cannot answer. The bindings are independent exchanges,
// so they are issued concurrently through the source's connection slots —
// the single biggest response-time lever for passed-bindings sources, whose
// per-item queries otherwise serialize into the plan's critical path.
//
// Failure handling is per binding: a transient failure retries only that
// binding (up to the executor's retry budget), and the first permanent
// failure stops the fan-out — workers finish their in-flight binding and no
// new bindings are issued. Cancellation behaves the same way: workers
// observe ctx between bindings, so a cancelled query stops promptly without
// leaking goroutines. Every attempt that reached the source is charged in
// queryStats.queries, so measured SourceQueries reflect genuine traffic.
func (e *Executor) emulatedSemijoin(ctx context.Context, j int, c cond.Cond, y set.Set) (set.Set, queryStats, error) {
	src := e.Sources[j]
	knownTrue, unknown := e.Cache.Partition(src.Name(), c, y)
	st := queryStats{hits: y.Len() - unknown.Len(), misses: unknown.Len()}
	if e.Cache == nil {
		st = queryStats{}
	}
	items := unknown.Items()
	if len(items) == 0 {
		return knownTrue, st, nil
	}

	workers := e.connsFor(j)
	if workers > len(items) {
		workers = len(items)
	}
	var (
		mu       sync.Mutex
		next     int
		bind     queryStats
		firstErr error
		matched  = make([]bool, len(items))
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if err := ctx.Err(); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("source %s: emulated semijoin: %w", src.Name(), err)
					}
					mu.Unlock()
					return
				}
				mu.Lock()
				if firstErr != nil || next >= len(items) {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()

				ok, bqs, err := e.bindingQuery(ctx, j, c, items[i])
				mu.Lock()
				bind.add(bqs)
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				matched[i] = ok
				mu.Unlock()
				e.Cache.PutMembership(src.Name(), c, items[i], ok)
			}
		}()
	}
	wg.Wait()
	st.add(bind)
	if firstErr != nil {
		return set.Set{}, st, firstErr
	}
	out := make([]string, 0, len(items))
	for i, ok := range matched {
		if ok {
			out = append(out, items[i])
		}
	}
	return set.FromSorted(out).Union(knownTrue), st, nil
}

// bindingQuery issues one passed-binding selection with per-binding
// transient retry, reporting the attempts, retries and errors that reached
// the source. Re-attempts after a transient failure record an attempt span
// (first attempts are covered by the enclosing step and exchange spans). A
// context error is never transient (source.IsTransient), so cancellation
// stops the retry loop on its first appearance.
func (e *Executor) bindingQuery(ctx context.Context, j int, c cond.Cond, item string) (bool, queryStats, error) {
	src := e.Sources[j]
	var qs queryStats
	for attempt := 0; ; attempt++ {
		actx := ctx
		var asp *obs.Span
		if attempt > 0 {
			actx, asp = obs.StartSpan(ctx, obs.KindAttempt, fmt.Sprintf("binding %s attempt %d", item, attempt+1))
		}
		release, err := e.slot(actx, j)
		if err != nil {
			asp.End(err)
			return false, qs, fmt.Errorf("source %s: %w", src.Name(), err)
		}
		ok, err := src.SelectBinding(actx, c, item)
		release()
		qs.queries++
		asp.End(err)
		if err == nil {
			return ok, qs, nil
		}
		qs.errors++
		if attempt >= e.Retries || !source.IsTransient(err) {
			return false, qs, err
		}
		// Between retries the context may have died (the failed attempt races
		// with cancellation); re-issuing the binding then is wasted traffic,
		// so surface the context error instead.
		if cerr := ctx.Err(); cerr != nil {
			return false, qs, fmt.Errorf("source %s: binding %s: %w", src.Name(), item, cerr)
		}
		qs.retries++
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
