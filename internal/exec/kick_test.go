package exec

import (
	"sync"
	"testing"
	"time"
)

// TestKickOneNeverBlocks pins the contract the chandiscipline analyzer
// assumes about the kick pattern: kickOne must return immediately no
// matter how many concurrent kickers race onto a full capacity-1 channel
// with nobody draining it — the select's default makes the send a latch,
// not a rendezvous.
func TestKickOneNeverBlocks(t *testing.T) {
	ch := make(chan struct{}, 1)
	const kickers, kicks = 32, 1000
	var wg sync.WaitGroup
	for i := 0; i < kickers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < kicks; j++ {
				kickOne(ch)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("kickOne blocked under concurrent kicks")
	}
	if n := len(ch); n > 1 {
		t.Fatalf("kick latch holds %d signals, want at most 1", n)
	}
}

// TestKickOneLatchesWakeup proves a kick is never lost: after any number
// of kicks, exactly one signal is pending, and a receiver woken by it can
// re-check state and sleep again without a second kick being required
// first.
func TestKickOneLatchesWakeup(t *testing.T) {
	ch := make(chan struct{}, 1)
	for i := 0; i < 5; i++ {
		kickOne(ch)
	}
	select {
	case <-ch:
	default:
		t.Fatal("no signal latched after kicks")
	}
	select {
	case <-ch:
		t.Fatal("more than one signal latched")
	default:
	}
}
