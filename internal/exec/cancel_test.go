package exec

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fusionq/internal/cond"
	"fusionq/internal/source"
)

// bindingCounter tallies the SelectBinding calls that reach the wrapped
// source, including attempts the source then fails or aborts.
type bindingCounter struct {
	source.Source
	bindings atomic.Int64
}

func (b *bindingCounter) SelectBinding(ctx context.Context, c cond.Cond, item string) (bool, error) {
	b.bindings.Add(1)
	return b.Source.SelectBinding(ctx, c, item)
}

// waitGoroutines polls until the goroutine count drops back to at most
// want, failing the test if it never does: a worker leaked.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines: %d, want <= %d; executor leaked workers:\n%s",
				runtime.NumGoroutine(), want, buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCancelMidEmulatedSemijoin cancels a query while its emulated
// semijoin's binding fan-out is in flight and checks the lifecycle
// contract: the run stops promptly instead of draining the remaining
// bindings, no worker goroutines leak, the error identifies
// context.Canceled through every layer, and the partial Result still
// charges every binding attempt that reached the source.
func TestCancelMidEmulatedSemijoin(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		name := "sequential"
		if parallel {
			name = "parallel"
		}
		t.Run(name, func(t *testing.T) {
			pr, srcs, _ := dmvSetup(t, semijoinCaps)
			// Each binding stalls 30ms (honoring ctx), so the fan-out is
			// mid-flight when the cancel lands.
			counter := &bindingCounter{
				Source: source.NewFlaky(srcs[1], 0, 1).SetStallFor("binding", 30*time.Millisecond),
			}
			srcs[1] = counter
			before := runtime.NumGoroutine()

			ctx, cancel := context.WithCancel(context.Background())
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				time.Sleep(15 * time.Millisecond)
				cancel()
			}()

			ex := &Executor{Sources: srcs, Parallel: parallel, Conns: 2, Retries: 3}
			start := time.Now()
			res, err := ex.Run(ctx, semijoinPlan(pr.Conds, pr.Sources))
			elapsed := time.Since(start)
			wg.Wait()

			if err == nil {
				t.Fatal("cancelled run completed without error")
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want errors.Is(err, context.Canceled)", err)
			}
			if source.IsTransient(err) {
				t.Fatalf("cancellation classified transient (would be retried): %v", err)
			}
			// Prompt: a full drain of the remaining bindings would take
			// several stall periods; the cancel must cut that short.
			if elapsed > time.Second {
				t.Fatalf("cancelled run returned after %v; cancellation is not prompt", elapsed)
			}
			if res == nil {
				t.Fatal("cancelled run returned a nil Result; partial accounting lost")
			}
			// Every binding attempt that reached the source is charged,
			// plus the round-1 selection that completed before the cancel.
			reached := int(counter.bindings.Load())
			if want := 1 + reached; res.SourceQueries != want {
				t.Fatalf("SourceQueries = %d, want %d (1 selection + %d binding attempts that reached the source)",
					res.SourceQueries, want, reached)
			}
			waitGoroutines(t, before)
		})
	}
}

// TestDeadlineMidEmulatedSemijoin runs the same fan-out under a deadline
// instead of an explicit cancel: the run must return around the deadline —
// not after the stalled bindings would have drained — with the error
// identifying context.DeadlineExceeded and the partial work charged.
func TestDeadlineMidEmulatedSemijoin(t *testing.T) {
	pr, srcs, _ := dmvSetup(t, semijoinCaps)
	// Stall each binding far beyond the deadline: only the deadline can
	// explain a prompt return.
	counter := &bindingCounter{
		Source: source.NewFlaky(srcs[1], 0, 1).SetStallFor("binding", 10*time.Second),
	}
	srcs[1] = counter
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	ex := &Executor{Sources: srcs, Parallel: true, Conns: 2, Retries: 3}
	start := time.Now()
	res, err := ex.Run(ctx, semijoinPlan(pr.Conds, pr.Sources))
	elapsed := time.Since(start)

	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want errors.Is(err, context.DeadlineExceeded)", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("deadline run returned after %v against a 10s stall", elapsed)
	}
	if res == nil {
		t.Fatal("deadline run returned a nil Result")
	}
	reached := int(counter.bindings.Load())
	if want := 1 + reached; res.SourceQueries != want {
		t.Fatalf("SourceQueries = %d, want %d (1 selection + %d binding attempts)",
			res.SourceQueries, want, reached)
	}
	waitGoroutines(t, before)
}
