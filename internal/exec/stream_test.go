package exec

import (
	"context"
	"strings"
	"testing"

	"fusionq/internal/optimizer"
	"fusionq/internal/plan"
	"fusionq/internal/set"
	"fusionq/internal/source"
	"fusionq/internal/stats"
	"fusionq/internal/workload"
)

// synthProblem builds a fresh synthetic workload plus its optimization
// problem, for differential materialized-vs-streaming runs.
func synthProblem(t *testing.T, cfg workload.SynthConfig) (*optimizer.Problem, []source.Source) {
	t.Helper()
	sc, err := workload.Synth(cfg)
	if err != nil {
		t.Fatal(err)
	}
	profiles := stats.UniformProfiles(sc.SourceNames(), stats.SourceProfile{
		PerQuery: 10, PerItemSent: 0.5, PerItemRecv: 0.5, PerByteLoad: 0.001,
	})
	for j, src := range sc.Sources {
		profiles[j].Support = stats.SupportOf(src.Caps())
	}
	table, err := stats.BuildFromSources(context.Background(), sc.Conds, sc.Sources, profiles)
	if err != nil {
		t.Fatal(err)
	}
	return &optimizer.Problem{Conds: sc.Conds, Sources: sc.SourceNames(), Table: table}, sc.Sources
}

// TestStreamingDMVAllOptimizers runs the Section 1 query through every
// optimizer on the streaming executor: identical answers, sane accounting.
func TestStreamingDMVAllOptimizers(t *testing.T) {
	algos := map[string]func(*optimizer.Problem) (optimizer.Result, error){
		"filter":     optimizer.Filter,
		"sj":         optimizer.SJ,
		"sja":        optimizer.SJA,
		"greedy-sj":  optimizer.GreedySJ,
		"greedy-sja": optimizer.GreedySJA,
		"sja+":       optimizer.SJAPlus,
		"greedy+":    optimizer.GreedySJAPlus,
	}
	for name, algo := range algos {
		t.Run(name, func(t *testing.T) {
			pr, srcs, network := dmvSetup(t, nil)
			res, err := algo(pr)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			ex := &Executor{Sources: srcs, Network: network, Streaming: true, BatchSize: 8, Trace: true}
			got, err := ex.Run(context.Background(), res.Plan)
			if err != nil {
				t.Fatalf("%s: run: %v\nplan:\n%s", name, err, res.Plan)
			}
			if !got.Answer.Equal(dmvAnswer) {
				t.Fatalf("%s: answer = %v, want %v\nplan:\n%s", name, got.Answer, dmvAnswer, res.Plan)
			}
			if got.SourceQueries == 0 {
				t.Fatalf("%s: no source queries recorded", name)
			}
			if got.TotalWork <= 0 || got.ResponseTime <= 0 || got.ResponseTime > got.TotalWork {
				t.Fatalf("%s: streaming timing = work %v, response %v", name, got.TotalWork, got.ResponseTime)
			}
			if got.FirstAnswer <= 0 {
				t.Fatalf("%s: FirstAnswer = %v, want > 0", name, got.FirstAnswer)
			}
			if len(got.Trace) != len(res.Plan.Steps) {
				t.Fatalf("%s: trace has %d entries for %d steps", name, len(got.Trace), len(res.Plan.Steps))
			}
		})
	}
}

// TestStreamingMatchesMaterializedSynthetic is the in-package differential
// check: on a mixed-capability synthetic workload, the streaming executor
// must produce exactly the materialized answer for every plan class.
func TestStreamingMatchesMaterializedSynthetic(t *testing.T) {
	cfg := workload.SynthConfig{
		Seed: 42, NumSources: 4, TuplesPerSource: 300, Universe: 150,
		Selectivity: []float64{0.1, 0.5, 0.8},
		Backend:     workload.BackendMixed,
		Caps: []source.Capabilities{
			{NativeSemijoin: true, PassedBindings: true},
			{PassedBindings: true},
			{NativeSemijoin: true},
			{},
		},
	}
	pr, srcs := synthProblem(t, cfg)
	mat := &Executor{Sources: srcs}
	str := &Executor{Sources: srcs, Streaming: true, BatchSize: 16}
	for name, algo := range map[string]func(*optimizer.Problem) (optimizer.Result, error){
		"filter": optimizer.Filter, "sj": optimizer.SJ, "sja": optimizer.SJA,
		"sja+": optimizer.SJAPlus, "greedy-sja": optimizer.GreedySJA,
	} {
		res, err := algo(pr)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want, err := mat.Run(context.Background(), res.Plan)
		if err != nil {
			t.Fatalf("%s: materialized: %v", name, err)
		}
		got, err := str.Run(context.Background(), res.Plan)
		if err != nil {
			t.Fatalf("%s: streaming: %v\nplan:\n%s", name, err, res.Plan)
		}
		if !got.Answer.Equal(want.Answer) {
			t.Fatalf("%s: streaming answer %v != materialized %v", name, got.Answer, want.Answer)
		}
	}
}

// TestStreamingEmptyShortCircuit: an empty selection closes its edge
// immediately, so the downstream semijoin node never probes the source —
// the streaming counterpart of the materialized empty-set elision.
func TestStreamingEmptyShortCircuit(t *testing.T) {
	pr, srcs, network := dmvSetup(t, nil)
	p := &plan.Plan{
		Conds:   pr.Conds,
		Sources: pr.Sources,
		Steps: []plan.Step{
			{Kind: plan.KindSelect, Out: "A", Cond: 0, Source: 0},
			{Kind: plan.KindDiff, Out: "Z", Cond: -1, Source: -1, In: []string{"A", "A"}}, // empty
			{Kind: plan.KindSemijoin, Out: "B", Cond: 1, Source: 1, In: []string{"Z"}},
			{Kind: plan.KindSemijoin, Out: "C", Cond: 1, Source: 2, In: []string{"B"}},
		},
		Result: "C",
	}
	ex := &Executor{Sources: srcs, Network: network, Streaming: true}
	got, err := ex.Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Answer.IsEmpty() {
		t.Fatalf("answer = %v, want empty", got.Answer)
	}
	if got.SourceQueries != 1 {
		t.Fatalf("SourceQueries = %d, want 1 (semijoins over empty streams elided)", got.SourceQueries)
	}
	// An empty run still reports when its (empty) answer was known.
	if got.FirstAnswer <= 0 {
		t.Fatalf("FirstAnswer = %v, want > 0 for an empty but successful run", got.FirstAnswer)
	}
}

// TestStreamingHonestPartial: a permanently failing source fails the run
// with an empty answer, while the traffic already paid for stays counted.
func TestStreamingHonestPartial(t *testing.T) {
	sc := workload.DMV()
	srcs := make([]source.Source, len(sc.Sources))
	for j, raw := range sc.Sources {
		if j == 1 {
			srcs[j] = source.NewFlaky(raw, 1.0, 7) // every operation fails
		} else {
			srcs[j] = raw
		}
	}
	p := &plan.Plan{
		Conds:   sc.Conds,
		Sources: sc.SourceNames(),
		Steps: []plan.Step{
			{Kind: plan.KindSelect, Out: "A", Cond: 0, Source: 0},
			{Kind: plan.KindSelect, Out: "B", Cond: 1, Source: 1},
			{Kind: plan.KindUnion, Out: "U", Cond: -1, Source: -1, In: []string{"A", "B"}},
		},
		Result: "U",
	}
	ex := &Executor{Sources: srcs, Streaming: true}
	got, err := ex.Run(context.Background(), p)
	if err == nil {
		t.Fatal("run against a dead source should fail")
	}
	if !strings.Contains(err.Error(), "sq(") {
		t.Fatalf("error %q does not name the failing step", err)
	}
	if !got.Answer.IsEmpty() {
		t.Fatalf("failed run leaked a partial answer: %v", got.Answer)
	}
	if got.FirstAnswer != 0 {
		t.Fatalf("failed run reported FirstAnswer = %v", got.FirstAnswer)
	}
	if got.SourceQueries == 0 {
		t.Fatal("failed run must still report the queries it issued")
	}
}

// TestStreamingCancellation: a cancelled context fails the run promptly
// and honestly (empty answer, wrapped context error, no leaked goroutines
// — the latter enforced by -race and the test exiting at all).
func TestStreamingCancellation(t *testing.T) {
	pr, srcs, network := dmvSetup(t, nil)
	res, err := optimizer.SJA(pr)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ex := &Executor{Sources: srcs, Network: network, Streaming: true}
	got, err := ex.Run(ctx, res.Plan)
	if err == nil {
		t.Fatal("cancelled run should fail")
	}
	if !strings.Contains(err.Error(), context.Canceled.Error()) {
		t.Fatalf("error %q does not report cancellation", err)
	}
	if !got.Answer.IsEmpty() {
		t.Fatalf("cancelled run leaked an answer: %v", got.Answer)
	}
}

// TestStreamingReducesPeakBytes: on a workload whose intermediates dwarf
// the answer, the streaming executor's peak mediator memory must come in
// under the materialized executor's, while the answers stay identical.
func TestStreamingReducesPeakBytes(t *testing.T) {
	cfg := workload.SynthConfig{
		Seed: 3, NumSources: 3, TuplesPerSource: 2000, Universe: 1000,
		Selectivity: []float64{0.5, 0.5, 0.5},
	}
	pr, srcs := synthProblem(t, cfg)
	res, err := optimizer.Filter(pr)
	if err != nil {
		t.Fatal(err)
	}
	mat := &Executor{Sources: srcs}
	matRes, err := mat.Run(context.Background(), res.Plan)
	if err != nil {
		t.Fatal(err)
	}
	str := &Executor{Sources: srcs, Streaming: true, BatchSize: 32}
	strRes, err := str.Run(context.Background(), res.Plan)
	if err != nil {
		t.Fatal(err)
	}
	if !strRes.Answer.Equal(matRes.Answer) {
		t.Fatalf("answers differ: streaming %d items, materialized %d", strRes.Answer.Len(), matRes.Answer.Len())
	}
	if matRes.PeakBytes == 0 || strRes.PeakBytes == 0 {
		t.Fatalf("peak bytes not accounted: materialized %d, streaming %d", matRes.PeakBytes, strRes.PeakBytes)
	}
	if strRes.PeakBytes >= matRes.PeakBytes {
		t.Fatalf("streaming peak %d not below materialized %d", strRes.PeakBytes, matRes.PeakBytes)
	}
}

// TestStreamingCacheParity: the streaming select node both consults and
// fills the answer cache, so a second run over the same cache answers
// selections locally.
func TestStreamingCacheParity(t *testing.T) {
	pr, srcs, network := dmvSetup(t, nil)
	res, err := optimizer.Filter(pr)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache()
	ex := &Executor{Sources: srcs, Network: network, Streaming: true, Cache: cache}
	first, err := ex.Run(context.Background(), res.Plan)
	if err != nil {
		t.Fatal(err)
	}
	second, err := ex.Run(context.Background(), res.Plan)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Answer.Equal(first.Answer) {
		t.Fatalf("cached rerun answer %v != first %v", second.Answer, first.Answer)
	}
	if second.CacheHits == 0 || second.SourceQueries != 0 {
		t.Fatalf("cached rerun: hits %d, queries %d; want all selections answered locally", second.CacheHits, second.SourceQueries)
	}
}

// TestStreamingHandlesReassignment: plans that reassign a variable (as the
// canonical filter plan does with X2 := X2 ∩ X1) are rewritten to
// single-assignment form, so each version gets its own producing node and
// later uses resolve to the version current at that point.
func TestStreamingHandlesReassignment(t *testing.T) {
	pr, srcs, _ := dmvSetup(t, nil)
	p := &plan.Plan{
		Conds:   pr.Conds,
		Sources: pr.Sources,
		Steps: []plan.Step{
			{Kind: plan.KindSelect, Out: "X", Cond: 0, Source: 0}, // {J55, T80}
			{Kind: plan.KindSemijoin, Out: "X", Cond: 1, Source: 1, In: []string{"X"}},
		},
		Result: "X",
	}
	steps, resultVar := ssaSteps(p)
	if steps[0].Out == steps[1].Out {
		t.Fatalf("SSA rewrite kept duplicate producer %q", steps[0].Out)
	}
	if steps[1].In[0] != steps[0].Out {
		t.Fatalf("SSA rewrite broke the def-use chain: %q reads %q", steps[1].Out, steps[1].In[0])
	}
	if resultVar != steps[1].Out {
		t.Fatalf("result resolves to %q, want final version %q", resultVar, steps[1].Out)
	}
	ex := &Executor{Sources: srcs, Streaming: true}
	got, err := ex.Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if want := set.New("J55"); !got.Answer.Equal(want) {
		t.Fatalf("answer = %v, want %v", got.Answer, want)
	}
}
