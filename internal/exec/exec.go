// Package exec implements the mediator's plan executor. It runs the
// straight-line plans of internal/plan against wrapped sources, performing
// the local set algebra (∪, ∩, −) and the postoptimization local
// selections at the mediator, and issuing selection, semijoin and load
// queries to the sources.
//
// Two execution modes are provided, both flowing through the same
// per-source bounded scheduler (scheduler.go). Sequential mode issues one
// source query at a time — each source-query step is a singleton batch on a
// single connection — so its simulated elapsed time equals the "total work"
// the paper's cost model minimizes. Parallel mode (the response-time
// direction the paper names as future work in Section 6) issues each
// round's independent source queries concurrently: every source admits at
// most its connection capacity of in-flight exchanges, emulated semijoins
// fan their binding queries out across those connections, and the simulated
// response time drops to the per-round critical path over the per-source
// k-lane schedules. Total work is unchanged by parallelism.
//
// Every run takes a context.Context. Cancellation is observed between
// steps, between the bindings of an emulated semijoin, and inside
// individual source exchanges; a cancelled run stops promptly, leaks no
// goroutines, and still returns a Result whose counters report the source
// queries and simulated work already paid for, alongside an error wrapping
// ctx.Err().
//
// A mediator-side answer cache (cache.go) can be attached to either mode:
// selection results and per-item membership verdicts learned from earlier
// queries answer repeated work without source traffic.
package exec

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"fusionq/internal/bloom"
	"fusionq/internal/fabric"
	"fusionq/internal/netsim"
	"fusionq/internal/obs"
	"fusionq/internal/plan"
	"fusionq/internal/relation"
	"fusionq/internal/set"
	"fusionq/internal/source"
)

// Executor runs plans against a fixed roster of sources. An Executor may
// be reused for sequential runs but is not safe for concurrent Run calls;
// within one run, parallel mode manages its own synchronization.
type Executor struct {
	// Sources must align with the Sources of every executed plan: the
	// step's Source index selects into this slice.
	Sources []source.Source
	// Network, when set, is used to account simulated response time. It
	// must be the same network the sources' instrumentation records to.
	Network *netsim.Network
	// Parallel enables concurrent execution of each round's independent
	// source queries, bounded per source by Conns / the link's MaxConns.
	Parallel bool
	// Conns, when positive, overrides every source's connection capacity
	// for parallel execution. Zero defers to the network link's MaxConns
	// (default 1). Sequential mode always runs single-connection.
	Conns int
	// Cache, when set, is consulted before every selection and binding
	// query and filters semijoin sets down to items with unknown verdicts.
	// Sharing one Cache across runs (adaptive rounds, repeated mediator
	// queries) lets later executions skip source traffic; see Cache for the
	// freshness caveats with autonomous sources.
	Cache *Cache
	// Trace records a per-step execution trace (Result.Trace): output
	// cardinalities, issued queries, cache hits, and elapsed simulated
	// time. Elapsed is attributed per step from the network exchange log
	// (steps sharing a source split the source's time pro rata by issued
	// queries).
	Trace bool
	// Retries is how many times a step whose source query fails with a
	// transient error (source.ErrTransient) is re-issued before the run
	// fails. Zero disables retries. Emulated semijoins retry per binding
	// query rather than per step: one flaky binding never re-issues the
	// bindings that already succeeded. Context cancellation is never
	// retried.
	Retries int
	// Streaming switches Run to the pull-based dataflow executor
	// (stream.go): every plan step becomes a concurrent node exchanging
	// sorted item batches, source selections are consumed chunk by chunk,
	// and semijoins fan out as input batches arrive. The answer and the
	// honest-partial guarantees are identical to the materialized path;
	// what changes is peak intermediate memory (bounded batch buffers
	// instead of whole variables) and the latency of the first answer
	// batch. Combined-record mode (RunCombined) always runs materialized.
	Streaming bool
	// BatchSize is the item-batch granularity of streaming execution and
	// of chunked source transfers; zero means set.DefaultBatch.
	BatchSize int

	// sched is the per-source slot pool of the current run.
	sched *scheduler

	// Combined-mode state (set up by RunCombined): when records is
	// non-nil, final-round queries (condition finalCond) use the
	// record-returning source operations and their results are cached.
	finalCond  int
	records    map[int]map[string][]relation.Tuple
	mu         sync.Mutex
	lastLoaded map[string]*relation.Relation
}

// Result summarizes one plan execution.
type Result struct {
	// Answer is the value of the plan's result variable: the items
	// satisfying all conditions of the fusion query. Empty when the run
	// failed or was cancelled before the result variable was computed.
	Answer set.Set
	// Vars holds the final value of every set variable. After a failed or
	// cancelled run it holds the variables computed so far.
	Vars map[string]set.Set
	// SourceQueries counts charged source operations actually issued
	// (selections, native semijoins, emulated per-binding selections,
	// loads) — including attempts that reached the source before the run
	// failed or was cancelled.
	SourceQueries int
	// TotalWork is the summed simulated duration of all exchanges — the
	// quantity the optimizers minimize. Zero without a Network.
	TotalWork time.Duration
	// ResponseTime is the simulated wall-clock: equal to TotalWork in
	// sequential mode, the sum of per-batch critical paths in parallel
	// mode, where each source's contribution to a batch is the makespan of
	// its exchanges over its connection capacity (netsim.Makespan). Zero
	// without a Network.
	ResponseTime time.Duration
	// CacheHits and CacheMisses count answer-cache consultations: a hit is
	// one source query avoided (a whole cached selection, or one binding
	// verdict), a miss went to the source. Both zero without a cache.
	CacheHits   int
	CacheMisses int
	// Retries counts source operations re-issued after a transient failure
	// — whole steps, or individual bindings of an emulated semijoin. The
	// re-issues themselves are already charged in SourceQueries.
	Retries int
	// PeakBytes is the high-water mark of mediator-held intermediate item
	// bytes (set.Bytes units). Materialized runs count the live set
	// variables and loaded relations; streaming runs count the in-flight
	// batch buffers, barrier materializations, loaded relations and the
	// accumulating answer. Bytes buffered at a source or inside a
	// streaming adapter play the server's role and are not mediator
	// memory.
	PeakBytes int
	// FirstAnswer is the wall-clock time from run start until the first
	// answer items existed: the first result batch in streaming mode, the
	// completed answer in materialized mode (where nothing is answerable
	// earlier). Zero when the run failed before producing any answer
	// items.
	FirstAnswer time.Duration
	// Trace is the per-step execution trace, present when the executor's
	// Trace flag is set, ordered by step index.
	Trace []StepTrace
	// Failovers and Hedges count replica-fabric activity across the run:
	// exchanges re-issued on another replica after a failure, and hedged
	// backup exchanges launched against stragglers. Zero for rosters
	// without replicated sources.
	Failovers int
	Hedges    int
	// FailedStep is the plan index of the first step that failed — the
	// minimum failed index when a parallel batch fails several steps — or
	// -1 when every executed step succeeded. Mid-query roster repair uses
	// it to locate the last completed round.
	FailedStep int
}

// Run executes the plan under ctx and returns the result. The plan's
// source names must match the executor's sources position by position.
//
// On failure — including cancellation and deadline expiry — the returned
// Result is still non-nil: its counters report the source queries, cache
// traffic and simulated work already performed, and Vars holds the set
// variables computed before the failure. The error wraps the cause, so
// errors.Is(err, context.Canceled) and errors.Is(err,
// context.DeadlineExceeded) identify abandoned runs.
func (e *Executor) Run(ctx context.Context, p *plan.Plan) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(p.Sources) != len(e.Sources) {
		return nil, fmt.Errorf("exec: plan has %d sources, executor has %d", len(p.Sources), len(e.Sources))
	}
	for j, name := range p.Sources {
		if e.Sources[j].Name() != name {
			return nil, fmt.Errorf("exec: plan source %d is %q but executor has %q", j, name, e.Sources[j].Name())
		}
	}

	st := &state{
		vars:   map[string]set.Set{},
		loaded: map[string]*relation.Relation{},
	}
	res := &Result{Vars: st.vars, FailedStep: -1}
	conns := make([]int, len(e.Sources))
	for j := range e.Sources {
		conns[j] = e.connsFor(j)
	}
	e.sched = newScheduler(conns)

	if e.Streaming && e.records == nil {
		return e.runStreaming(ctx, p, st, res)
	}

	start := time.Now()
	// In materialized mode nothing is answerable before the run completes:
	// the first-answer phase spans the whole execution, which is exactly
	// the coupling streaming execution breaks.
	_, faSpan := obs.StartSpan(ctx, obs.KindPhase, "first-answer")

	finish := func(err error) (*Result, error) {
		res.Answer = st.vars[p.Result]
		e.lastLoaded = st.loaded
		st.mu.Lock()
		res.PeakBytes = st.peakBytes
		st.mu.Unlock()
		faSpan.End(err)
		if err == nil {
			res.FirstAnswer = time.Since(start)
			obs.Meter(ctx).Histogram(obs.MFirstAnswerSeconds).Observe(res.FirstAnswer.Seconds())
		}
		if e.Trace {
			sort.Slice(res.Trace, func(a, b int) bool { return res.Trace[a].Index < res.Trace[b].Index })
		}
		return res, err
	}

	steps := p.Steps
	for k := 0; k < len(steps); {
		if err := ctx.Err(); err != nil {
			return finish(fmt.Errorf("exec: %w", err))
		}
		if steps[k].IsSourceQuery() {
			// Every source-query step runs as a batch — a singleton in
			// sequential mode, a whole round of independent steps in
			// parallel mode — so accounting and scheduling are uniform:
			// an emulated semijoin's binding fan-out needs the k-lane
			// makespan accounting either way.
			end := k + 1
			if e.Parallel {
				end = e.batchEnd(p, steps, k)
			}
			if err := e.runBatch(ctx, p, steps, k, end, st, res); err != nil {
				return finish(err)
			}
			k = end
			continue
		}
		if err := e.runStepRetry(ctx, p, k, steps[k], st, res, nil); err != nil {
			return finish(err)
		}
		k++
	}
	return finish(nil)
}

// state is the mutable execution environment: set variables and loaded
// source contents, plus the live-bytes accounting behind Result.PeakBytes.
type state struct {
	mu     sync.Mutex
	vars   map[string]set.Set
	loaded map[string]*relation.Relation

	// liveBytes is the item bytes currently held in vars plus the bytes of
	// loaded relations; peakBytes is its high-water mark.
	liveBytes int
	peakBytes int
}

func (s *state) get(name string) (set.Set, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.vars[name]
	return v, ok
}

func (s *state) setVar(name string, v set.Set) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.setVarLocked(name, v)
}

func (s *state) setVarLocked(name string, v set.Set) {
	if old, ok := s.vars[name]; ok {
		s.liveBytes -= old.Bytes()
	}
	s.vars[name] = v
	s.addBytesLocked(v.Bytes())
}

func (s *state) addBytesLocked(n int) {
	s.liveBytes += n
	if s.liveBytes > s.peakBytes {
		s.peakBytes = s.liveBytes
	}
}

// batchEnd finds the longest run of source-query steps starting at k whose
// inputs are independent of the batch's own outputs, so they may execute
// concurrently. This captures exactly one round's selection and semijoin
// queries in the canonical plans; difference-pruned chains serialize
// naturally because the interleaved diff steps are not source queries.
func (e *Executor) batchEnd(p *plan.Plan, steps []plan.Step, k int) int {
	outs := map[string]bool{}
	end := k
	for end < len(steps) {
		s := steps[end]
		if !s.IsSourceQuery() {
			break
		}
		dep := false
		for _, in := range s.In {
			if outs[in] {
				dep = true
			}
		}
		if dep {
			break
		}
		outs[s.Out] = true
		end++
	}
	return end
}

// runBatch executes source-query steps concurrently and accounts the batch
// critical path as its response-time contribution: each source contributes
// the makespan of its exchanges over its connection capacity, and the
// slowest source bounds the batch. Work already performed is charged even
// when the batch fails — counters and simulated time reflect the traffic
// that reached the sources.
func (e *Executor) runBatch(ctx context.Context, p *plan.Plan, steps []plan.Step, start, end int, st *state, res *Result) error {
	batch := steps[start:end]
	var preTotal time.Duration
	if e.Network != nil {
		preTotal = e.Network.Stats().TotalTime
		defer func() {
			// Total work accrues regardless of parallelism or failure. A
			// concurrent query's planning phase may reset the shared
			// network's accounting mid-batch (the documented approximation
			// for concurrent mediator queries), so never charge a negative
			// delta.
			if d := e.Network.Stats().TotalTime - preTotal; d > 0 {
				res.TotalWork += d
			}
		}()
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		critical time.Duration
	)
	logStart := 0
	if e.Network != nil {
		logStart = len(e.Network.Log())
	}
	for i := range batch {
		wg.Add(1)
		go func(idx int, s plan.Step) {
			defer wg.Done()
			err := e.runStepRetry(ctx, p, idx, s, st, res, &mu)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(start+i, batch[i])
	}
	wg.Wait()
	if e.Network != nil {
		// Clamp: a concurrent query's planning phase may have reset the
		// shared exchange log since logStart was captured.
		log := e.Network.Log()
		if logStart > len(log) {
			logStart = len(log)
		}
		lanes, owners, laneConns := e.exchangeGroups(log[logStart:])
		for name, durs := range lanes {
			if d := netsim.Makespan(durs, laneConns[name]); d > critical {
				critical = d
			}
		}
		res.ResponseTime += critical
		if e.Trace {
			e.attributeElapsed(res, steps, start, end, owners)
		}
	}
	return firstErr
}

// replicaSource is the fabric's accounting face: a logical source exposing
// its physical endpoints' connection capacities.
type replicaSource interface {
	ReplicaConns() map[string]int
}

// exchangeGroups buckets a slice of the exchange log two ways. lanes feeds
// makespan accounting: one lane per physical endpoint in parallel and
// streaming modes (each endpoint owns its connection pool), collapsed into
// the owning logical source at one connection in sequential mode so the
// sequential TotalWork == ResponseTime identity survives failover and
// hedging. owners rolls every endpoint up to its logical source for
// per-step elapsed attribution, which matches plan steps by logical name.
func (e *Executor) exchangeGroups(entries []netsim.Exchange) (lanes, owners map[string][]time.Duration, laneConns map[string]int) {
	seq := !e.Parallel && !e.Streaming
	owner := map[string]string{}
	laneConns = map[string]int{}
	for j, src := range e.Sources {
		name := src.Name()
		laneConns[name] = e.connsFor(j)
		if rc, ok := src.(replicaSource); ok {
			for epName, k := range rc.ReplicaConns() {
				owner[epName] = name
				if seq {
					laneConns[epName] = 1
				} else {
					if e.Conns > 0 {
						k = e.Conns
					}
					laneConns[epName] = k
				}
			}
		}
	}
	lanes = map[string][]time.Duration{}
	owners = map[string][]time.Duration{}
	for _, ex := range entries {
		own := ex.Source
		if o, ok := owner[ex.Source]; ok {
			own = o
		}
		owners[own] = append(owners[own], ex.Elapsed)
		lane := ex.Source
		if seq {
			lane = own
		}
		lanes[lane] = append(lanes[lane], ex.Elapsed)
	}
	return lanes, owners, laneConns
}

// attributeElapsed fixes up the batch's step traces from the exchange log:
// each step is charged the exchange time of its source during the batch.
// When several batch steps share one source (non-canonical plans), the
// source's time is split pro rata by issued queries.
func (e *Executor) attributeElapsed(res *Result, steps []plan.Step, start, end int, perSource map[string][]time.Duration) {
	byIdx := map[int]*StepTrace{}
	for i := range res.Trace {
		byIdx[res.Trace[i].Index] = &res.Trace[i]
	}
	for name, durs := range perSource {
		var total time.Duration
		for _, d := range durs {
			total += d
		}
		var entries []*StepTrace
		queries := 0
		for k := start; k < end; k++ {
			if e.Sources[steps[k].Source].Name() != name {
				continue
			}
			if tr := byIdx[k]; tr != nil {
				entries = append(entries, tr)
				queries += tr.Queries
			}
		}
		switch {
		case len(entries) == 1:
			entries[0].Elapsed = total
		case len(entries) > 1 && queries > 0:
			for _, tr := range entries {
				tr.Elapsed = total * time.Duration(tr.Queries) / time.Duration(queries)
			}
		case len(entries) > 1:
			for _, tr := range entries {
				tr.Elapsed = total / time.Duration(len(entries))
			}
		}
	}
}

// runStepRetry runs one step to completion, re-issuing it on transient
// source failures up to the executor's retry budget. Source queries are
// reads, so retries are safe; the extra traffic of a failed attempt is
// genuine extra work and stays charged. Emulated semijoins are excluded
// from the whole-step budget: their retry is per binding query inside
// emulatedSemijoin, so one flaky binding never re-issues the bindings that
// already succeeded. Context errors are not transient, so cancellation ends
// the loop at once.
//
// The step is wrapped in a step span; re-attempts after a transient failure
// get attempt spans beneath it. Counters and the step trace aggregate over
// all attempts; failed steps appear in the trace with Err set. mu, when
// non-nil, guards the shared Result during batches.
func (e *Executor) runStepRetry(ctx context.Context, p *plan.Plan, idx int, s plan.Step, st *state, res *Result, mu *sync.Mutex) error {
	budget := 0
	isSource := s.IsSourceQuery()
	var srcName string
	if isSource {
		srcName = e.Sources[s.Source].Name()
		budget = e.Retries
		if s.Kind == plan.KindSemijoin {
			if caps := e.Sources[s.Source].Caps(); !caps.NativeSemijoin && caps.PassedBindings {
				budget = 0
			}
		}
	}
	text := p.StepString(s)
	sctx, span := obs.StartSpan(ctx, obs.KindStep, text)
	if isSource {
		span.SetAttr("source", srcName)
	}
	// A replicated source's failovers and hedges are attributed to this
	// step through context-carried call stats.
	var cs *fabric.CallStats
	if isSource {
		if _, ok := e.Sources[s.Source].(replicaSource); ok {
			cs = &fabric.CallStats{}
			sctx = fabric.WithCallStats(sctx, cs)
		}
	}

	var agg queryStats
	var stepErr error
	for attempt := 0; ; attempt++ {
		actx := sctx
		var asp *obs.Span
		if attempt > 0 {
			actx, asp = obs.StartSpan(sctx, obs.KindAttempt, fmt.Sprintf("attempt %d", attempt+1))
		}
		qs, err := e.execStep(actx, p, s, st)
		asp.End(err)
		agg.add(qs)
		stepErr = err
		if err == nil {
			break
		}
		agg.errors++
		if attempt >= budget || !source.IsTransient(err) {
			break
		}
		// A transient failure is only worth retrying while the caller still
		// wants the answer: once ctx is done, stop with the context error so
		// fault sweeps cannot burn the whole retry budget after cancellation.
		if cerr := ctx.Err(); cerr != nil {
			stepErr = fmt.Errorf("exec: %s: %w", text, cerr)
			break
		}
		agg.retries++
	}
	span.End(stepErr)

	if isSource {
		met := obs.Meter(ctx)
		met.Counter(obs.MSourceQueries, "source", srcName).Add(int64(agg.queries))
		met.Counter(obs.MCacheHits, "source", srcName).Add(int64(agg.hits))
		met.Counter(obs.MCacheMisses, "source", srcName).Add(int64(agg.misses))
		met.Counter(obs.MRetries, "source", srcName).Add(int64(agg.retries))
		if stepErr != nil {
			met.Counter(obs.MStepErrors, "source", srcName).Inc()
		}
	}

	var failovers, hedges int
	if cs != nil {
		failovers = int(cs.Failovers.Load())
		hedges = int(cs.Hedges.Load())
	}
	if agg != (queryStats{}) || e.Trace || failovers+hedges > 0 || stepErr != nil {
		if mu != nil {
			mu.Lock()
		}
		res.SourceQueries += agg.queries
		res.CacheHits += agg.hits
		res.CacheMisses += agg.misses
		res.Retries += agg.retries
		res.Failovers += failovers
		res.Hedges += hedges
		if stepErr != nil && (res.FailedStep < 0 || idx < res.FailedStep) {
			res.FailedStep = idx
		}
		if e.Trace {
			tr := StepTrace{Index: idx, Text: text, Queries: agg.queries, CacheHits: agg.hits, Retries: agg.retries, Errors: agg.errors, Failovers: failovers, Hedges: hedges}
			if stepErr != nil {
				tr.Err = stepErr.Error()
			} else if v, ok := st.get(s.Out); ok {
				tr.OutItems = v.Len()
			}
			res.Trace = append(res.Trace, tr)
		}
		if mu != nil {
			mu.Unlock()
		}
	}
	return stepErr
}

// execStep performs the step's operation, returning its query statistics
// alongside any error — the statistics are meaningful in both cases.
func (e *Executor) execStep(ctx context.Context, p *plan.Plan, s plan.Step, st *state) (queryStats, error) {
	var qs queryStats
	switch s.Kind {
	case plan.KindSelect:
		src := e.Sources[s.Source]
		if e.records != nil && s.Cond == e.finalCond {
			release, err := e.slot(ctx, s.Source)
			if err != nil {
				return qs, fmt.Errorf("exec: %s: source %s: %w", p.StepString(s), src.Name(), err)
			}
			tuples, err := src.SelectRecords(ctx, p.Conds[s.Cond])
			release()
			qs.queries = 1
			if err != nil {
				return qs, fmt.Errorf("exec: %s: %w", p.StepString(s), err)
			}
			e.cacheRecords(s.Source, tuples, src.Schema().MergeIndex())
			st.setVar(s.Out, itemsOf(tuples, src.Schema().MergeIndex()))
			break
		}
		out, q, err := e.selectQuery(ctx, s.Source, p.Conds[s.Cond])
		qs = q
		if err != nil {
			return qs, fmt.Errorf("exec: %s: %w", p.StepString(s), err)
		}
		st.setVar(s.Out, out)
	case plan.KindSemijoin:
		src := e.Sources[s.Source]
		in, ok := st.get(s.In[0])
		if !ok {
			return qs, fmt.Errorf("exec: %s: undefined input %q", p.StepString(s), s.In[0])
		}
		if in.IsEmpty() {
			// Runtime short-circuit: a semijoin over the empty set is
			// empty without asking the source. Once a running set drains,
			// every later semijoin round costs nothing.
			st.setVar(s.Out, set.Empty)
			break
		}
		if e.records != nil && s.Cond == e.finalCond && src.Caps().NativeSemijoin {
			release, err := e.slot(ctx, s.Source)
			if err != nil {
				return qs, fmt.Errorf("exec: %s: source %s: %w", p.StepString(s), src.Name(), err)
			}
			tuples, err := src.SemijoinRecords(ctx, p.Conds[s.Cond], in)
			release()
			qs.queries = 1
			if err != nil {
				return qs, fmt.Errorf("exec: %s: %w", p.StepString(s), err)
			}
			e.cacheRecords(s.Source, tuples, src.Schema().MergeIndex())
			st.setVar(s.Out, itemsOf(tuples, src.Schema().MergeIndex()))
			break
		}
		out, q, err := e.semijoinQuery(ctx, s.Source, p.Conds[s.Cond], in)
		qs = q
		if err != nil {
			return qs, fmt.Errorf("exec: %s: %w", p.StepString(s), err)
		}
		st.setVar(s.Out, out)
	case plan.KindBloomSemijoin:
		src := e.Sources[s.Source]
		in, ok := st.get(s.In[0])
		if !ok {
			return qs, fmt.Errorf("exec: %s: undefined input %q", p.StepString(s), s.In[0])
		}
		if in.IsEmpty() {
			st.setVar(s.Out, set.Empty)
			break
		}
		filter := bloom.FromItems(in.Items(), bloom.DefaultBitsPerItem)
		release, err := e.slot(ctx, s.Source)
		if err != nil {
			return qs, fmt.Errorf("exec: %s: source %s: %w", p.StepString(s), src.Name(), err)
		}
		positives, err := src.SemijoinBloom(ctx, p.Conds[s.Cond], filter)
		release()
		qs.queries = 1
		if err != nil {
			return qs, fmt.Errorf("exec: %s: %w", p.StepString(s), err)
		}
		// Discard the filter's false positives: the exact semijoin result
		// is the positives restricted to the actual set.
		st.setVar(s.Out, positives.Intersect(in))
	case plan.KindLoad:
		src := e.Sources[s.Source]
		release, err := e.slot(ctx, s.Source)
		if err != nil {
			return qs, fmt.Errorf("exec: %s: source %s: %w", p.StepString(s), src.Name(), err)
		}
		rel, err := src.Load(ctx)
		release()
		qs.queries = 1
		if err != nil {
			return qs, fmt.Errorf("exec: %s: %w", p.StepString(s), err)
		}
		st.mu.Lock()
		st.loaded[s.Out] = rel
		st.setVarLocked(s.Out, set.FromSorted(rel.Items()))
		st.addBytesLocked(rel.Bytes())
		st.mu.Unlock()
	case plan.KindLocalSelect:
		st.mu.Lock()
		rel, ok := st.loaded[s.In[0]]
		st.mu.Unlock()
		if !ok {
			return qs, fmt.Errorf("exec: %s: %q is not loaded source contents", p.StepString(s), s.In[0])
		}
		out, err := localSelect(rel, p, s.Cond)
		if err != nil {
			return qs, fmt.Errorf("exec: %s: %w", p.StepString(s), err)
		}
		st.setVar(s.Out, out)
	case plan.KindUnion:
		sets, err := st.gather(s.In)
		if err != nil {
			return qs, fmt.Errorf("exec: %s: %w", p.StepString(s), err)
		}
		st.setVar(s.Out, set.UnionAll(sets...))
	case plan.KindIntersect:
		sets, err := st.gather(s.In)
		if err != nil {
			return qs, fmt.Errorf("exec: %s: %w", p.StepString(s), err)
		}
		st.setVar(s.Out, set.IntersectAll(sets...))
	case plan.KindDiff:
		sets, err := st.gather(s.In)
		if err != nil {
			return qs, fmt.Errorf("exec: %s: %w", p.StepString(s), err)
		}
		st.setVar(s.Out, sets[0].Diff(sets[1]))
	default:
		return qs, fmt.Errorf("exec: unknown step kind %v", s.Kind)
	}
	return qs, nil
}

func (st *state) gather(names []string) ([]set.Set, error) {
	out := make([]set.Set, len(names))
	for i, name := range names {
		v, ok := st.get(name)
		if !ok {
			return nil, fmt.Errorf("undefined variable %q", name)
		}
		out[i] = v
	}
	return out, nil
}

// itemsOf extracts the distinct merge-attribute items of tuples, sorted.
// The extraction runs on every record-returning exchange, so both the item
// buffer and the dedup map are pre-sized to the tuple count (the common
// case is few or no duplicate merge values).
func itemsOf(tuples []relation.Tuple, mergeIdx int) set.Set {
	if len(tuples) == 0 {
		return set.Empty
	}
	seen := make(map[string]bool, len(tuples))
	items := make([]string, 0, len(tuples))
	for _, t := range tuples {
		item := t[mergeIdx].Raw()
		if !seen[item] {
			seen[item] = true
			items = append(items, item)
		}
	}
	return set.New(items...)
}

// localSelect applies condition ci of the plan to loaded source contents,
// returning the matching items. Local computation is free in the cost model
// (Section 2.4).
func localSelect(rel *relation.Relation, p *plan.Plan, ci int) (set.Set, error) {
	c := p.Conds[ci]
	schema := rel.Schema()
	mi := schema.MergeIndex()
	seen := map[string]bool{}
	var items []string
	for _, t := range rel.Rows() {
		ok, err := c.Eval(schema, t)
		if err != nil {
			return set.Set{}, err
		}
		if ok {
			item := t[mi].Raw()
			if !seen[item] {
				seen[item] = true
				items = append(items, item)
			}
		}
	}
	return set.New(items...), nil
}
