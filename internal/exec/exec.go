// Package exec implements the mediator's plan executor. It runs the
// straight-line plans of internal/plan against wrapped sources, performing
// the local set algebra (∪, ∩, −) and the postoptimization local
// selections at the mediator, and issuing selection, semijoin and load
// queries to the sources.
//
// Two execution modes are provided. Sequential mode issues one source query
// at a time; its simulated elapsed time equals the "total work" the paper's
// cost model minimizes. Parallel mode (the response-time direction the
// paper names as future work in Section 6) issues each round's independent
// source queries concurrently: total work is unchanged, but the simulated
// response time drops to the per-round critical path.
package exec

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"fusionq/internal/bloom"
	"fusionq/internal/netsim"
	"fusionq/internal/plan"
	"fusionq/internal/relation"
	"fusionq/internal/set"
	"fusionq/internal/source"
)

// Executor runs plans against a fixed roster of sources. An Executor may
// be reused for sequential runs but is not safe for concurrent Run calls;
// within one run, parallel mode manages its own synchronization.
type Executor struct {
	// Sources must align with the Sources of every executed plan: the
	// step's Source index selects into this slice.
	Sources []source.Source
	// Network, when set, is used to account simulated response time. It
	// must be the same network the sources' instrumentation records to.
	Network *netsim.Network
	// Parallel enables concurrent execution of each round's independent
	// source queries.
	Parallel bool
	// Trace records a per-step execution trace (Result.Trace): output
	// cardinalities, issued queries, and elapsed simulated time (elapsed
	// is only attributed per step in sequential mode).
	Trace bool
	// Retries is how many times a step whose source query fails with a
	// transient error (source.ErrTransient) is re-issued before the run
	// fails. Zero disables retries.
	Retries int

	// Combined-mode state (set up by RunCombined): when records is
	// non-nil, final-round queries (condition finalCond) use the
	// record-returning source operations and their results are cached.
	finalCond  int
	records    map[int]map[string][]relation.Tuple
	mu         sync.Mutex
	lastLoaded map[string]*relation.Relation
}

// Result summarizes one plan execution.
type Result struct {
	// Answer is the value of the plan's result variable: the items
	// satisfying all conditions of the fusion query.
	Answer set.Set
	// Vars holds the final value of every set variable.
	Vars map[string]set.Set
	// SourceQueries counts charged source operations actually issued
	// (selections, native semijoins, emulated per-binding selections,
	// loads).
	SourceQueries int
	// TotalWork is the summed simulated duration of all exchanges — the
	// quantity the optimizers minimize. Zero without a Network.
	TotalWork time.Duration
	// ResponseTime is the simulated wall-clock: equal to TotalWork in
	// sequential mode, the sum of per-batch critical paths in parallel
	// mode. Zero without a Network.
	ResponseTime time.Duration
	// Trace is the per-step execution trace, present when the executor's
	// Trace flag is set, ordered by step index.
	Trace []StepTrace
}

// Run executes the plan and returns the result. The plan's source names
// must match the executor's sources position by position.
func (e *Executor) Run(p *plan.Plan) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(p.Sources) != len(e.Sources) {
		return nil, fmt.Errorf("exec: plan has %d sources, executor has %d", len(p.Sources), len(e.Sources))
	}
	for j, name := range p.Sources {
		if e.Sources[j].Name() != name {
			return nil, fmt.Errorf("exec: plan source %d is %q but executor has %q", j, name, e.Sources[j].Name())
		}
	}

	st := &state{
		vars:   map[string]set.Set{},
		loaded: map[string]*relation.Relation{},
	}
	res := &Result{Vars: st.vars}

	steps := p.Steps
	for k := 0; k < len(steps); {
		if e.Parallel {
			if batch := e.batchEnd(p, steps, k); batch > k+1 {
				if err := e.runBatch(p, steps, k, batch, st, res); err != nil {
					return nil, err
				}
				k = batch
				continue
			}
		}
		if err := e.runStepRetry(p, k, steps[k], st, res, nil); err != nil {
			return nil, err
		}
		k++
	}
	res.Answer = st.vars[p.Result]
	e.lastLoaded = st.loaded
	if e.Trace {
		sort.Slice(res.Trace, func(a, b int) bool { return res.Trace[a].Index < res.Trace[b].Index })
	}
	return res, nil
}

// state is the mutable execution environment: set variables and loaded
// source contents.
type state struct {
	mu     sync.Mutex
	vars   map[string]set.Set
	loaded map[string]*relation.Relation
}

func (s *state) get(name string) (set.Set, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.vars[name]
	return v, ok
}

func (s *state) setVar(name string, v set.Set) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.vars[name] = v
}

// batchEnd finds the longest run of source-query steps starting at k whose
// inputs are independent of the batch's own outputs, so they may execute
// concurrently. This captures exactly one round's selection and semijoin
// queries in the canonical plans; difference-pruned chains serialize
// naturally because the interleaved diff steps are not source queries.
func (e *Executor) batchEnd(p *plan.Plan, steps []plan.Step, k int) int {
	outs := map[string]bool{}
	end := k
	for end < len(steps) {
		s := steps[end]
		if !s.IsSourceQuery() {
			break
		}
		dep := false
		for _, in := range s.In {
			if outs[in] {
				dep = true
			}
		}
		if dep {
			break
		}
		outs[s.Out] = true
		end++
	}
	return end
}

// runBatch executes source-query steps concurrently and accounts the batch
// critical path as its response-time contribution.
func (e *Executor) runBatch(p *plan.Plan, steps []plan.Step, start, end int, st *state, res *Result) error {
	batch := steps[start:end]
	var preTotal time.Duration
	if e.Network != nil {
		preTotal = e.Network.Stats().TotalTime
		defer func() {
			// Total work accrues regardless of parallelism.
			res.TotalWork += e.Network.Stats().TotalTime - preTotal
		}()
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		critical time.Duration
	)
	logStart := 0
	if e.Network != nil {
		logStart = len(e.Network.Log())
	}
	for i := range batch {
		wg.Add(1)
		go func(idx int, s plan.Step) {
			defer wg.Done()
			err := e.runStepRetry(p, idx, s, st, res, &mu)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(start+i, batch[i])
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	if e.Network != nil {
		// The batch's response time is the slowest source's share of it.
		perSource := map[string]time.Duration{}
		for _, ex := range e.Network.Log()[logStart:] {
			perSource[ex.Source] += ex.Elapsed
		}
		for _, d := range perSource {
			if d > critical {
				critical = d
			}
		}
		res.ResponseTime += critical
	}
	return nil
}

// runStepRetry runs one step, re-issuing it on transient source failures
// up to the executor's retry budget. Source queries are reads, so retries
// are safe; the extra traffic of a failed attempt is genuine extra work.
func (e *Executor) runStepRetry(p *plan.Plan, idx int, s plan.Step, st *state, res *Result, mu *sync.Mutex) error {
	for attempt := 0; ; attempt++ {
		err := e.runStep(p, idx, s, st, res, mu)
		if err == nil {
			return nil
		}
		if attempt >= e.Retries || !source.IsTransient(err) {
			return err
		}
	}
}

// runStep executes one step. mu, when non-nil, guards the shared Result
// counters during parallel batches.
func (e *Executor) runStep(p *plan.Plan, idx int, s plan.Step, st *state, res *Result, mu *sync.Mutex) error {
	var preTotal time.Duration
	sequential := mu == nil
	if sequential && e.Network != nil && s.IsSourceQuery() {
		preTotal = e.Network.Stats().TotalTime
	}
	queries := 0
	switch s.Kind {
	case plan.KindSelect:
		src := e.Sources[s.Source]
		if e.records != nil && s.Cond == e.finalCond {
			tuples, err := src.SelectRecords(p.Conds[s.Cond])
			if err != nil {
				return fmt.Errorf("exec: %s: %w", p.StepString(s), err)
			}
			e.cacheRecords(s.Source, tuples, src.Schema().MergeIndex())
			st.setVar(s.Out, itemsOf(tuples, src.Schema().MergeIndex()))
			queries = 1
			break
		}
		out, err := src.Select(p.Conds[s.Cond])
		if err != nil {
			return fmt.Errorf("exec: %s: %w", p.StepString(s), err)
		}
		st.setVar(s.Out, out)
		queries = 1
	case plan.KindSemijoin:
		src := e.Sources[s.Source]
		in, ok := st.get(s.In[0])
		if !ok {
			return fmt.Errorf("exec: %s: undefined input %q", p.StepString(s), s.In[0])
		}
		if in.IsEmpty() {
			// Runtime short-circuit: a semijoin over the empty set is
			// empty without asking the source. Once a running set drains,
			// every later semijoin round costs nothing.
			st.setVar(s.Out, set.Empty)
			break
		}
		if e.records != nil && s.Cond == e.finalCond && src.Caps().NativeSemijoin {
			tuples, err := src.SemijoinRecords(p.Conds[s.Cond], in)
			if err != nil {
				return fmt.Errorf("exec: %s: %w", p.StepString(s), err)
			}
			e.cacheRecords(s.Source, tuples, src.Schema().MergeIndex())
			st.setVar(s.Out, itemsOf(tuples, src.Schema().MergeIndex()))
			queries = 1
			break
		}
		out, err := source.SemijoinAuto(src, p.Conds[s.Cond], in)
		if err != nil {
			return fmt.Errorf("exec: %s: %w", p.StepString(s), err)
		}
		st.setVar(s.Out, out)
		if src.Caps().NativeSemijoin {
			queries = 1
		} else {
			queries = in.Len() // emulated: one binding query per item
		}
	case plan.KindBloomSemijoin:
		src := e.Sources[s.Source]
		in, ok := st.get(s.In[0])
		if !ok {
			return fmt.Errorf("exec: %s: undefined input %q", p.StepString(s), s.In[0])
		}
		if in.IsEmpty() {
			st.setVar(s.Out, set.Empty)
			break
		}
		filter := bloom.FromItems(in.Items(), bloom.DefaultBitsPerItem)
		positives, err := src.SemijoinBloom(p.Conds[s.Cond], filter)
		if err != nil {
			return fmt.Errorf("exec: %s: %w", p.StepString(s), err)
		}
		// Discard the filter's false positives: the exact semijoin result
		// is the positives restricted to the actual set.
		st.setVar(s.Out, positives.Intersect(in))
		queries = 1
	case plan.KindLoad:
		src := e.Sources[s.Source]
		rel, err := src.Load()
		if err != nil {
			return fmt.Errorf("exec: %s: %w", p.StepString(s), err)
		}
		st.mu.Lock()
		st.loaded[s.Out] = rel
		st.vars[s.Out] = set.FromSorted(rel.Items())
		st.mu.Unlock()
		queries = 1
	case plan.KindLocalSelect:
		st.mu.Lock()
		rel, ok := st.loaded[s.In[0]]
		st.mu.Unlock()
		if !ok {
			return fmt.Errorf("exec: %s: %q is not loaded source contents", p.StepString(s), s.In[0])
		}
		out, err := localSelect(rel, p, s.Cond)
		if err != nil {
			return fmt.Errorf("exec: %s: %w", p.StepString(s), err)
		}
		st.setVar(s.Out, out)
	case plan.KindUnion:
		sets, err := st.gather(s.In)
		if err != nil {
			return fmt.Errorf("exec: %s: %w", p.StepString(s), err)
		}
		st.setVar(s.Out, set.UnionAll(sets...))
	case plan.KindIntersect:
		sets, err := st.gather(s.In)
		if err != nil {
			return fmt.Errorf("exec: %s: %w", p.StepString(s), err)
		}
		st.setVar(s.Out, set.IntersectAll(sets...))
	case plan.KindDiff:
		sets, err := st.gather(s.In)
		if err != nil {
			return fmt.Errorf("exec: %s: %w", p.StepString(s), err)
		}
		st.setVar(s.Out, sets[0].Diff(sets[1]))
	default:
		return fmt.Errorf("exec: unknown step kind %v", s.Kind)
	}

	if queries > 0 {
		if mu != nil {
			mu.Lock()
		}
		res.SourceQueries += queries
		if mu != nil {
			mu.Unlock()
		}
	}
	var elapsed time.Duration
	if sequential && e.Network != nil && s.IsSourceQuery() {
		elapsed = e.Network.Stats().TotalTime - preTotal
		res.TotalWork += elapsed
		res.ResponseTime += elapsed
	}
	if e.Trace {
		outItems := 0
		if v, ok := st.get(s.Out); ok {
			outItems = v.Len()
		}
		tr := StepTrace{Index: idx, Text: p.StepString(s), OutItems: outItems, Queries: queries, Elapsed: elapsed}
		if mu != nil {
			mu.Lock()
		}
		res.Trace = append(res.Trace, tr)
		if mu != nil {
			mu.Unlock()
		}
	}
	return nil
}

func (st *state) gather(names []string) ([]set.Set, error) {
	out := make([]set.Set, len(names))
	for i, name := range names {
		v, ok := st.get(name)
		if !ok {
			return nil, fmt.Errorf("undefined variable %q", name)
		}
		out[i] = v
	}
	return out, nil
}

// itemsOf extracts the distinct merge-attribute items of tuples, sorted.
func itemsOf(tuples []relation.Tuple, mergeIdx int) set.Set {
	seen := map[string]bool{}
	var items []string
	for _, t := range tuples {
		item := t[mergeIdx].Raw()
		if !seen[item] {
			seen[item] = true
			items = append(items, item)
		}
	}
	return set.New(items...)
}

// localSelect applies condition ci of the plan to loaded source contents,
// returning the matching items. Local computation is free in the cost model
// (Section 2.4).
func localSelect(rel *relation.Relation, p *plan.Plan, ci int) (set.Set, error) {
	c := p.Conds[ci]
	schema := rel.Schema()
	mi := schema.MergeIndex()
	seen := map[string]bool{}
	var items []string
	for _, t := range rel.Rows() {
		ok, err := c.Eval(schema, t)
		if err != nil {
			return set.Set{}, err
		}
		if ok {
			item := t[mi].Raw()
			if !seen[item] {
				seen[item] = true
				items = append(items, item)
			}
		}
	}
	return set.New(items...), nil
}
