package exec

import (
	"context"
	"fmt"

	"fusionq/internal/relation"
	"fusionq/internal/set"
	"fusionq/internal/source"
)

// FetchAnswer implements the "second phase" of two-phase fusion-query
// processing (Section 1): once phase one has identified the matching items,
// fetch the full records of those entities from every source. The returned
// relation holds the union of the sources' tuples for the answer items.
func FetchAnswer(ctx context.Context, answer set.Set, sources []source.Source) (*relation.Relation, error) {
	if len(sources) == 0 {
		return nil, fmt.Errorf("exec: no sources to fetch from")
	}
	schema := sources[0].Schema()
	out := relation.NewRelation(schema)
	if answer.IsEmpty() {
		return out, nil
	}
	for _, src := range sources {
		if !schema.Compatible(src.Schema()) {
			return nil, fmt.Errorf("exec: source %s schema %s incompatible with %s", src.Name(), src.Schema(), schema)
		}
		tuples, err := src.Fetch(ctx, answer)
		if err != nil {
			return nil, fmt.Errorf("exec: fetching from %s: %w", src.Name(), err)
		}
		for _, t := range tuples {
			if err := out.Insert(t); err != nil {
				return nil, fmt.Errorf("exec: fetching from %s: %w", src.Name(), err)
			}
		}
	}
	return out, nil
}
