// Package fusionq_test holds the top-level benchmark harness: one benchmark
// per experiment of the suite (E1–E9, see DESIGN.md and EXPERIMENTS.md),
// plus micro-benchmarks of the optimization algorithms themselves. Regenerate
// the experiment tables with cmd/fqbench; these benchmarks time the same
// code paths under the standard testing.B machinery.
package fusionq_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"fusionq/internal/bench"
	"fusionq/internal/exec"
	"fusionq/internal/netsim"
	"fusionq/internal/optimizer"
	"fusionq/internal/plan"
	"fusionq/internal/source"
	"fusionq/internal/stats"
	"fusionq/internal/workload"
)

// runExperiment wraps one experiment of the suite as a benchmark.
func runExperiment(b *testing.B, id string) {
	e, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		table, err := e.Run(context.Background())
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(table.Rows) == 0 {
			b.Fatalf("%s: empty table", id)
		}
	}
}

func BenchmarkE1PlanQualityVsSources(b *testing.B) { runExperiment(b, "E1") }
func BenchmarkE2Heterogeneity(b *testing.B)        { runExperiment(b, "E2") }
func BenchmarkE3Crossover(b *testing.B)            { runExperiment(b, "E3") }
func BenchmarkE4OptimizerScaling(b *testing.B)     { runExperiment(b, "E4") }
func BenchmarkE5GreedyQuality(b *testing.B)        { runExperiment(b, "E5") }
func BenchmarkE6Postopt(b *testing.B)              { runExperiment(b, "E6") }
func BenchmarkE7JoinOverUnion(b *testing.B)        { runExperiment(b, "E7") }
func BenchmarkE8TwoPhase(b *testing.B)             { runExperiment(b, "E8") }
func BenchmarkE9Execution(b *testing.B)            { runExperiment(b, "E9") }
func BenchmarkE10ResponseTime(b *testing.B)        { runExperiment(b, "E10") }
func BenchmarkE11Dependence(b *testing.B)          { runExperiment(b, "E11") }
func BenchmarkE12ChainOrder(b *testing.B)          { runExperiment(b, "E12") }
func BenchmarkE13CombinedFetch(b *testing.B)       { runExperiment(b, "E13") }
func BenchmarkE14BloomSemijoin(b *testing.B)       { runExperiment(b, "E14") }
func BenchmarkE15Adaptive(b *testing.B)            { runExperiment(b, "E15") }
func BenchmarkE16ParallelSemijoin(b *testing.B)    { runExperiment(b, "E16") }

// synthProblem builds an m-condition, n-source optimization problem from
// synthetic statistics for the micro-benchmarks.
func synthProblem(b *testing.B, m, n int) *optimizer.Problem {
	b.Helper()
	conds := workload.MustConds(m)
	sts := make([]stats.SourceStats, n)
	profiles := make([]stats.SourceProfile, n)
	for j := 0; j < n; j++ {
		cc := make([]float64, m)
		for i := range cc {
			cc[i] = float64(10 * (i + 1))
		}
		sts[j] = stats.SourceStats{Name: plan.SourceName(j), Tuples: 1000, DistinctItems: 1000, Bytes: 40000, CondCard: cc}
		profiles[j] = stats.SourceProfile{
			Name: plan.SourceName(j), PerQuery: 0.1, PerItemSent: 0.001, PerItemRecv: 0.001,
			PerByteLoad: 0.00001, Support: stats.SemijoinNative,
		}
	}
	table, err := stats.Build(conds, sts, profiles)
	if err != nil {
		b.Fatal(err)
	}
	names := make([]string, n)
	for j := range names {
		names[j] = plan.SourceName(j)
	}
	return &optimizer.Problem{Conds: conds, Sources: names, Table: table}
}

// benchAlgo times one optimizer at a given problem size.
func benchAlgo(b *testing.B, fn func(*optimizer.Problem) (optimizer.Result, error), m, n int) {
	pr := synthProblem(b, m, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fn(pr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimizers(b *testing.B) {
	algos := []struct {
		name string
		fn   func(*optimizer.Problem) (optimizer.Result, error)
	}{
		{"Filter", optimizer.Filter},
		{"SJ", optimizer.SJ},
		{"SJA", optimizer.SJA},
		{"SJAPlus", optimizer.SJAPlus},
		{"GreedySJA", optimizer.GreedySJA},
	}
	sizes := []struct{ m, n int }{{3, 8}, {3, 64}, {5, 8}}
	for _, a := range algos {
		for _, s := range sizes {
			b.Run(fmt.Sprintf("%s/m%d_n%d", a.name, s.m, s.n), func(b *testing.B) {
				benchAlgo(b, a.fn, s.m, s.n)
			})
		}
	}
}

// BenchmarkEmulatedSemijoinConns runs an emulated semijoin — a selection
// feeding per-binding probes at a bindings-only source — through the
// executor under k per-source connections and reports the SIMULATED
// response time as sim_s/op (wall time measures only the simulator's
// bookkeeping). Total work is parallelism-invariant; response time should
// fall toward 1/k of the sequential figure as k grows.
func BenchmarkEmulatedSemijoinConns(b *testing.B) {
	cfg := workload.SynthConfig{
		Seed: 7, NumSources: 2, TuplesPerSource: 300, Universe: 200,
		Selectivity: []float64{0.25, 0.3},
		Caps:        []source.Capabilities{{PassedBindings: true}},
	}
	modes := []struct {
		name     string
		parallel bool
		conns    int
	}{
		{"sequential", false, 1},
		{"conns1", true, 1},
		{"conns2", true, 2},
		{"conns4", true, 4},
		{"conns8", true, 8},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			sc, err := workload.Synth(cfg)
			if err != nil {
				b.Fatal(err)
			}
			network := netsim.NewNetwork(1)
			link := netsim.Link{
				Latency: 5 * time.Millisecond, BytesPerSec: 4096,
				RequestOverhead: 2 * time.Millisecond, MaxConns: mode.conns,
			}
			srcs := make([]source.Source, len(sc.Sources))
			for j, raw := range sc.Sources {
				network.SetLink(raw.Name(), link)
				srcs[j] = source.Instrument(raw, network)
			}
			p := &plan.Plan{
				Conds:   sc.Conds,
				Sources: sc.SourceNames(),
				Steps: []plan.Step{
					{Kind: plan.KindSelect, Out: "A", Cond: 0, Source: 0},
					{Kind: plan.KindSemijoin, Out: "B", Cond: 1, Source: 1, In: []string{"A"}},
				},
				Result: "B",
			}
			ex := &exec.Executor{Sources: srcs, Network: network, Parallel: mode.parallel}
			b.ReportAllocs()
			b.ResetTimer()
			var resp time.Duration
			for i := 0; i < b.N; i++ {
				network.Reset()
				run, err := ex.Run(context.Background(), p)
				if err != nil {
					b.Fatal(err)
				}
				resp = run.ResponseTime
			}
			b.ReportMetric(resp.Seconds(), "sim_s/op")
		})
	}
}

// BenchmarkPlanEstimate times the static cost estimator on an SJA+ plan.
func BenchmarkPlanEstimate(b *testing.B) {
	pr := synthProblem(b, 4, 16)
	res, err := optimizer.SJAPlus(pr)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.EstimateCost(res.Plan, pr.Table); err != nil {
			b.Fatal(err)
		}
	}
}
