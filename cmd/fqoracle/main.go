// Command fqoracle runs the differential plan-equivalence oracle as a soak:
// it generates seeded random fusion-query instances and checks every plan
// class against the naive reference executor under every execution mode
// (see internal/oracle). On a property violation it shrinks the instance to
// minimal form, prints the seed, the violations, the minimal instance JSON
// and the verbatim repro command, optionally writes a repro artifact, and
// exits 1.
//
// Usage:
//
//	fqoracle [-n 500] [-seed 1] [-duration 0] [-churn] [-repro out.json] [-selftest] [-v]
//
// With -duration set, fqoracle runs until the wall clock expires instead of
// counting instances (the CI soak mode). -seed 0 derives a seed from the
// clock and prints it, so even ad-hoc soaks are reproducible. -churn forces
// the replica-churn sweep on every instance, alternating between a
// surviving-replica kill (the answer must still be exact) and a kill of
// every replica (the failure must classify honestly) — the CI churn soak.
// -selftest injects a deliberate answer corruption and verifies the oracle
// catches and shrinks it — a meta-check that the safety net is live.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"fusionq/internal/obs"
	"fusionq/internal/oracle"
	"fusionq/internal/set"
)

// writeFlight dumps the soak's flight recorder as a JSON artifact.
func writeFlight(rec *obs.Recorder, path string) {
	data, err := rec.ExportJSON()
	if err == nil {
		err = os.WriteFile(path, append(data, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "fqoracle: flight artifact: %v\n", err)
		return
	}
	fmt.Printf("fqoracle: flight recorder written to %s\n", path)
}

func main() {
	var (
		n        = flag.Int("n", 500, "instances to run (ignored when -duration is set)")
		seed     = flag.Int64("seed", 1, "master seed; instance i uses seed+i (0 derives one from the clock)")
		duration = flag.Duration("duration", 0, "soak for this long instead of counting instances")
		churn    = flag.Bool("churn", false, "force the replica-churn sweep on every instance, alternating surviving-replica and kill-all scenarios")
		repro    = flag.String("repro", "", "write the minimal reproducing instance JSON to this file on failure")
		flight   = flag.String("flight", "", "write the soak's flight-recorder JSON (tail-retained traces of every plan run) to this file")
		selftest = flag.Bool("selftest", false, "inject an answer corruption and verify the oracle catches and shrinks it")
		verbose  = flag.Bool("v", false, "log every instance")
	)
	flag.Parse()
	os.Exit(run(context.Background(), *n, *seed, *duration, *churn, *repro, *flight, *selftest, *verbose))
}

// reproArtifact is the JSON document written for a failing run.
type reproArtifact struct {
	Seed     int64            `json:"seed"`
	Original oracle.Instance  `json:"original"`
	Minimal  oracle.Instance  `json:"minimal"`
	Failures []oracle.Failure `json:"failures"`
	Command  string           `json:"command"`
}

func run(ctx context.Context, n int, seed int64, duration time.Duration, churn bool, reproPath, flightPath string, selftest, verbose bool) int {
	if seed == 0 {
		seed = time.Now().UnixNano()
		fmt.Printf("fqoracle: derived seed %d (pass -seed=%d to replay this soak)\n", seed, seed)
	}
	d := &oracle.Driver{}
	if flightPath != "" {
		d.Recorder = obs.NewRecorder(obs.RecorderConfig{})
		// The artifact is written however the soak ends — a failing run's
		// flight tail is exactly the interesting one.
		defer writeFlight(d.Recorder, flightPath)
	}
	if selftest {
		d.MutateClass = "sja+"
		d.Mutate = func(s set.Set) set.Set {
			if s.IsEmpty() {
				return set.New("BOGUS")
			}
			return set.New(s.Items()[:s.Len()-1]...)
		}
		fmt.Println("fqoracle: selftest — corrupting sja+ answers; the oracle must catch this")
	}

	start := time.Now()
	checked := 0
	for i := 0; ; i++ {
		if duration > 0 {
			if time.Since(start) >= duration {
				break
			}
		} else if i >= n {
			break
		}
		instSeed := seed + int64(i)
		inst := oracle.Generate(instSeed)
		if churn {
			inst.Replicate = true
			inst.ChurnKillAll = i%2 == 1
		}
		fs, err := d.Check(ctx, inst)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fqoracle: seed %d: instance could not be built: %v\n", instSeed, err)
			return 2
		}
		checked++
		if verbose {
			fmt.Printf("seed %d: %d sources, %d conds, %d tuples: %d violations\n",
				instSeed, inst.NumSources, len(inst.Selectivity), inst.TuplesPerSource, len(fs))
		}
		if len(fs) == 0 {
			continue
		}
		if selftest {
			return reportSelftest(ctx, d, inst, fs, reproPath)
		}
		report(ctx, d, inst, fs, reproPath)
		return 1
	}
	if selftest {
		fmt.Fprintf(os.Stderr, "fqoracle: selftest FAILED: corruption survived %d instances undetected\n", checked)
		return 1
	}
	fmt.Printf("fqoracle: %d instances in %v, all properties hold (seeds %d..%d)\n",
		checked, time.Since(start).Round(time.Millisecond), seed, seed+int64(checked-1))
	return 0
}

// report shrinks, prints and persists one genuine failure.
func report(ctx context.Context, d *oracle.Driver, inst oracle.Instance, fs []oracle.Failure, reproPath string) {
	minInst, minFails := d.Shrink(ctx, inst, fs, 300)
	fmt.Fprintf(os.Stderr, "fqoracle: FAILURE at seed %d (%d violations):\n", inst.Seed, len(fs))
	for _, f := range fs {
		fmt.Fprintf(os.Stderr, "  - %s\n", f)
	}
	fmt.Fprintf(os.Stderr, "minimal instance (%d violations", len(minFails))
	for _, f := range minFails {
		fmt.Fprintf(os.Stderr, "; %s", f.Property)
	}
	fmt.Fprintf(os.Stderr, "):\n%s\n", minInst.JSON())
	fmt.Fprintf(os.Stderr, "repro: %s\n", inst.ReproCommand())
	writeArtifact(reproPath, reproArtifact{
		Seed: inst.Seed, Original: inst, Minimal: minInst, Failures: minFails, Command: inst.ReproCommand(),
	})
}

// reportSelftest validates that the injected corruption was caught as an
// answer mismatch and shrinks cleanly, returning the process exit code.
func reportSelftest(ctx context.Context, d *oracle.Driver, inst oracle.Instance, fs []oracle.Failure, reproPath string) int {
	caught := false
	for _, f := range fs {
		if f.Property == "answer-mismatch" {
			caught = true
		}
	}
	if !caught {
		fmt.Fprintf(os.Stderr, "fqoracle: selftest FAILED: violations found but none is an answer mismatch: %v\n", fs)
		return 1
	}
	minInst, minFails := d.Shrink(ctx, inst, fs, 300)
	still := false
	for _, f := range minFails {
		if f.Property == "answer-mismatch" {
			still = true
		}
	}
	if !still {
		fmt.Fprintf(os.Stderr, "fqoracle: selftest FAILED: shrunk instance lost the mismatch\n%s\n", minInst.JSON())
		return 1
	}
	fmt.Printf("fqoracle: selftest passed — corruption caught at seed %d and shrunk to %d sources, %d conds, %d tuples\n",
		inst.Seed, minInst.NumSources, len(minInst.Selectivity), minInst.TuplesPerSource)
	writeArtifact(reproPath, reproArtifact{
		Seed: inst.Seed, Original: inst, Minimal: minInst, Failures: minFails, Command: inst.ReproCommand(),
	})
	return 0
}

// writeArtifact persists the repro document; best effort, path optional.
func writeArtifact(path string, art reproArtifact) {
	if path == "" {
		return
	}
	b, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "fqoracle: marshaling repro artifact: %v\n", err)
		return
	}
	b = append(b, '\n')
	if err := os.WriteFile(path, b, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "fqoracle: writing repro artifact: %v\n", err)
		return
	}
	fmt.Fprintf(os.Stderr, "fqoracle: repro artifact written to %s\n", path)
}
