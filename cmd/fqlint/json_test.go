package main

import (
	"flag"
	"go/token"
	"os"
	"path/filepath"
	"testing"

	"fusionq/internal/lint/analysis"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestRenderJSONGolden pins the -json output shape byte-for-byte: CI
// uploads it as an artifact and editor integrations parse it, so a field
// rename or formatting change must be a deliberate diff here.
func TestRenderJSONGolden(t *testing.T) {
	diags := []analysis.Diagnostic{
		{
			Pos:      token.Position{Filename: "internal/wire/client.go", Line: 131, Column: 2},
			Analyzer: "blockinglock",
			Message:  "network I/O (net.DialContext) while wire.Client.mu is held (locked at internal/wire/client.go:131:2)",
		},
		{
			Pos:      token.Position{Filename: "internal/fabric/fabric.go", Line: 555, Column: 12},
			Analyzer: "chandiscipline",
			Message:  "unguarded channel send in goroutine: use a select with a default (non-blocking kick) or a ctx.Done()/done case",
		},
	}
	checkGolden(t, diags, filepath.Join("testdata", "findings.golden"))
}

// TestRenderJSONEmpty: a clean run still emits a findings array (not
// null), so `jq '.findings | length'` works unconditionally.
func TestRenderJSONEmpty(t *testing.T) {
	checkGolden(t, nil, filepath.Join("testdata", "empty.golden"))
}

func checkGolden(t *testing.T, diags []analysis.Diagnostic, golden string) {
	t.Helper()
	got, err := renderJSON(diags)
	if err != nil {
		t.Fatalf("renderJSON: %v", err)
	}
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o666); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to regenerate): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("-json output drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, got, want)
	}
}
