// go vet -vettool integration. When cmd/go drives a vet tool it invokes it
// once per package with a single argument, a JSON config file describing
// the unit of work: the package's source files plus the compiled export
// data of every dependency. The tool type-checks the unit against that
// export data (no re-parsing of dependencies), reports findings on stderr
// in file:line:col form, and writes its serialized facts — empty here, the
// fqlint analyzers are package-local — to cfg.VetxOutput so cmd/go can
// cache the run. This mirrors golang.org/x/tools/go/analysis/unitchecker,
// which is not vendorable offline.
package main

import (
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"

	"fusionq/internal/lint/analysis"
	"fusionq/internal/lint/load"
)

// vetConfig is the subset of cmd/go's vet config fqlint consumes.
type vetConfig struct {
	ID          string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes one vet unit; its return value is the process exit
// code (vet convention: non-zero on findings).
func unitcheck(cfgPath string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fqlint: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "fqlint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// Facts first: even a facts-only run (a dependency of the package being
	// vetted) must produce its output file or cmd/go reports a build
	// failure.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "fqlint: %v\n", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	pkg, err := load.Check(fset, imp, cfg.ImportPath, cfg.GoFiles)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fqlint: %s: %v\n", cfg.ImportPath, err)
		return 2
	}
	if len(pkg.TypeErrors) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "fqlint: %s: %v\n", cfg.ImportPath, terr)
		}
		return 2
	}
	diags := runAnalyzers(pkg, analyzers)
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", d.Pos, d.Message)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
