// go vet -vettool integration. When cmd/go drives a vet tool it invokes it
// once per package with a single argument, a JSON config file describing
// the unit of work: the package's source files, the compiled export data
// of every dependency, and — via PackageVetx — the facts file each
// dependency's earlier run of this tool produced. The tool type-checks the
// unit against the export data, runs the analyzers with the dependency
// facts wired into the Pass, reports findings on stderr in file:line:col
// form, and writes its own serialized facts to cfg.VetxOutput so cmd/go
// can cache and forward them. Facts matter here: lockorder and
// blockinglock export per-function concurrency summaries, which is how a
// lock-order cycle spanning two packages is caught in whichever package
// completes it. This mirrors golang.org/x/tools/go/analysis/unitchecker,
// which is not vendorable offline.
package main

import (
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"sort"
	"strings"

	"fusionq/internal/lint/analysis"
	"fusionq/internal/lint/load"
)

// vetConfig is the subset of cmd/go's vet config fqlint consumes.
type vetConfig struct {
	ID          string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes one vet unit; its return value is the process exit
// code (vet convention: non-zero on findings).
func unitcheck(cfgPath string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fqlint: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "fqlint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// Dependencies outside this module export no fqlint facts (the
	// blocking vocabulary for the standard library is built in), so their
	// facts-only runs can skip type-checking entirely and write an empty
	// vetx file — keeping `go vet ./...`, which schedules a VetxOnly run
	// for every transitive std dependency, fast.
	if cfg.VetxOnly && !strings.HasPrefix(cfg.ImportPath, "fusionq") {
		return writeVetx(cfg.VetxOutput, nil)
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	pkg, err := load.Check(fset, imp, cfg.ImportPath, cfg.GoFiles)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fqlint: %s: %v\n", cfg.ImportPath, err)
		return 2
	}
	if len(pkg.TypeErrors) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "fqlint: %s: %v\n", cfg.ImportPath, terr)
		}
		return 2
	}

	facts, err := readDepFacts(cfg.PackageVetx)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fqlint: %v\n", err)
		return 2
	}
	for dep := range cfg.PackageVetx {
		pkg.Imports = append(pkg.Imports, dep)
	}
	sort.Strings(pkg.Imports)

	diags := runAnalyzers(pkg, analyzers, facts)
	exported := map[string][]byte{}
	for name, byPkg := range facts {
		if blob, ok := byPkg[cfg.ImportPath]; ok {
			exported[name] = blob
		}
	}
	if code := writeVetx(cfg.VetxOutput, exported); code != 0 {
		return code
	}
	if cfg.VetxOnly {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", d.Pos, d.Message)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// readDepFacts loads each dependency's vetx file into a fact store.
func readDepFacts(vetx map[string]string) (factStore, error) {
	facts := newFactStore()
	for dep, file := range vetx {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, fmt.Errorf("reading facts of %s: %w", dep, err)
		}
		byAnalyzer, err := analysis.DecodeVetx(data)
		if err != nil {
			return nil, fmt.Errorf("decoding facts of %s: %w", dep, err)
		}
		for name, blob := range byAnalyzer {
			if facts[name] == nil {
				facts[name] = map[string][]byte{}
			}
			facts[name][dep] = blob
		}
	}
	return facts, nil
}

// writeVetx persists this unit's facts; cmd/go requires the file to exist
// even when there are none.
func writeVetx(path string, byAnalyzer map[string][]byte) int {
	if path == "" {
		return 0
	}
	data, err := analysis.EncodeVetx(byAnalyzer)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fqlint: encoding facts: %v\n", err)
		return 2
	}
	if err := os.WriteFile(path, data, 0o666); err != nil {
		fmt.Fprintf(os.Stderr, "fqlint: %v\n", err)
		return 2
	}
	return 0
}
