// Command fqlint runs the fusionq static-analysis suite (internal/lint):
// custom analyzers that enforce the codebase's context-propagation, metric-
// vocabulary, error-wrapping, span-pairing and goroutine-ownership
// contracts.
//
// Standalone:
//
//	fqlint ./...                 check packages (go-list patterns)
//	fqlint -list                 print the analyzers and their invariants
//	fqlint -only nakedgo ./...   run a subset (comma-separated names)
//
// As a vet tool, which reuses go vet's build cache and export data:
//
//	go build -o bin/fqlint ./cmd/fqlint
//	go vet -vettool=$(pwd)/bin/fqlint ./...
//
// Exit status: 0 clean, 1 findings, 2 operational failure. A finding can be
// suppressed — with justification — by a comment on the flagged line or the
// line above:
//
//	//fqlint:ignore nakedgo drain watcher exits when wg.Wait returns
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"fusionq/internal/lint"
	"fusionq/internal/lint/analysis"
	"fusionq/internal/lint/load"
)

func main() {
	// `go vet -vettool` probes the tool's identity and flag set before
	// handing it a config; answer before flag parsing so the probes never
	// tangle with our own flags.
	for _, arg := range os.Args[1:] {
		switch arg {
		case "-V=full", "--V=full":
			fmt.Printf("fqlint version fqlint-1.0.0\n")
			return
		case "-flags", "--flags":
			// JSON flag description consumed by cmd/go's vetflag parser.
			fmt.Println(`[{"Name":"only","Bool":false,"Usage":"comma-separated analyzer names to run (default: all)"}]`)
			return
		}
	}
	listFlag := flag.Bool("list", false, "list analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fqlint: %v\n", err)
		os.Exit(2)
	}
	if *listFlag {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		// Invoked by `go vet -vettool` with a unit-checker config.
		os.Exit(unitcheck(args[0], analyzers))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	os.Exit(standalone(args, analyzers))
}

func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	all := lint.All()
	if only == "" {
		return all, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// standalone loads packages itself (go list + source-level type checking)
// and reports findings to stdout.
func standalone(patterns []string, analyzers []*analysis.Analyzer) int {
	pkgs, err := load.Packages(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fqlint: %v\n", err)
		return 2
	}
	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "fqlint: %s: %v\n", pkg.PkgPath, terr)
		}
		if len(pkg.TypeErrors) > 0 {
			return 2
		}
		diags = append(diags, runAnalyzers(pkg, analyzers)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "fqlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

func runAnalyzers(pkg *load.Package, analyzers []*analysis.Analyzer) []analysis.Diagnostic {
	var out []analysis.Diagnostic
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		if err := a.Run(pass); err != nil {
			fmt.Fprintf(os.Stderr, "fqlint: %s on %s: %v\n", a.Name, pkg.PkgPath, err)
			continue
		}
		out = append(out, pass.Diagnostics()...)
	}
	return out
}
