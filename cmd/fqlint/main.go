// Command fqlint runs the fusionq static-analysis suite (internal/lint):
// custom analyzers that enforce the codebase's context-propagation, metric-
// vocabulary, error-wrapping, span-pairing and goroutine-ownership
// contracts.
//
// Standalone:
//
//	fqlint ./...                 check packages (go-list patterns)
//	fqlint -list                 print the analyzers and their invariants
//	fqlint -only nakedgo ./...   run a subset (comma-separated names)
//
// As a vet tool, which reuses go vet's build cache and export data:
//
//	go build -o bin/fqlint ./cmd/fqlint
//	go vet -vettool=$(pwd)/bin/fqlint ./...
//
// Exit status: 0 clean, 1 findings, 2 operational failure. A finding can be
// suppressed — with justification — by a comment on the flagged line or the
// line above:
//
//	//fqlint:ignore nakedgo drain watcher exits when wg.Wait returns
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"fusionq/internal/lint"
	"fusionq/internal/lint/analysis"
	"fusionq/internal/lint/load"
)

func main() {
	// `go vet -vettool` probes the tool's identity and flag set before
	// handing it a config; answer before flag parsing so the probes never
	// tangle with our own flags.
	for _, arg := range os.Args[1:] {
		switch arg {
		case "-V=full", "--V=full":
			fmt.Printf("fqlint version fqlint-1.0.0\n")
			return
		case "-flags", "--flags":
			// JSON flag description consumed by cmd/go's vetflag parser.
			fmt.Println(`[{"Name":"only","Bool":false,"Usage":"comma-separated analyzer names to run (default: all)"},` +
				`{"Name":"json","Bool":true,"Usage":"standalone mode: print findings as JSON"}]`)
			return
		}
	}
	listFlag := flag.Bool("list", false, "list analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := flag.Bool("json", false, "standalone mode: print findings as JSON ({\"findings\":[{file,line,col,analyzer,message}]})")
	flag.Parse()

	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fqlint: %v\n", err)
		os.Exit(2)
	}
	if *listFlag {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		// Invoked by `go vet -vettool` with a unit-checker config.
		os.Exit(unitcheck(args[0], analyzers))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	os.Exit(standalone(args, analyzers, *jsonOut))
}

func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	all := lint.All()
	if only == "" {
		return all, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// standalone loads packages itself (go list + source-level type checking)
// and reports findings to stdout. Packages run in dependency order so
// fact-exporting analyzers (lockorder, blockinglock) see their summaries
// propagate exactly as they do through go vet's vetx files.
func standalone(patterns []string, analyzers []*analysis.Analyzer, jsonOut bool) int {
	pkgs, err := load.Packages(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fqlint: %v\n", err)
		return 2
	}
	facts := newFactStore()
	var diags []analysis.Diagnostic
	for _, pkg := range dependencyOrder(pkgs) {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "fqlint: %s: %v\n", pkg.PkgPath, terr)
		}
		if len(pkg.TypeErrors) > 0 {
			return 2
		}
		diags = append(diags, runAnalyzers(pkg, analyzers, facts)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	if jsonOut {
		out, err := renderJSON(diags)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fqlint: %v\n", err)
			return 2
		}
		fmt.Println(string(out))
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "fqlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// dependencyOrder topologically sorts the loaded packages by their import
// edges (edges outside the loaded set are ignored); the go toolchain
// guarantees acyclicity, but a defensive visited check keeps a corrupt
// listing from recursing forever.
func dependencyOrder(pkgs []*load.Package) []*load.Package {
	byPath := map[string]*load.Package{}
	for _, p := range pkgs {
		byPath[p.PkgPath] = p
	}
	var out []*load.Package
	done := map[string]bool{}
	var visit func(p *load.Package)
	visit = func(p *load.Package) {
		if done[p.PkgPath] {
			return
		}
		done[p.PkgPath] = true
		for _, imp := range p.Imports {
			if dep, ok := byPath[imp]; ok {
				visit(dep)
			}
		}
		out = append(out, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return out
}

// factStore carries analyzer facts across packages within one standalone
// run: analyzer name → package path → exported blob.
type factStore map[string]map[string][]byte

func newFactStore() factStore { return factStore{} }

func (fs factStore) importedFor(a *analysis.Analyzer, imports []string) map[string][]byte {
	byPkg := fs[a.Name]
	if byPkg == nil {
		return nil
	}
	out := map[string][]byte{}
	for _, imp := range imports {
		if blob, ok := byPkg[imp]; ok {
			out[imp] = blob
		}
	}
	return out
}

func (fs factStore) record(a *analysis.Analyzer, pkgPath string, blob []byte) {
	if blob == nil {
		return
	}
	if fs[a.Name] == nil {
		fs[a.Name] = map[string][]byte{}
	}
	fs[a.Name][pkgPath] = blob
}

func runAnalyzers(pkg *load.Package, analyzers []*analysis.Analyzer, facts factStore) []analysis.Diagnostic {
	var out []analysis.Diagnostic
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:      a,
			Fset:          pkg.Fset,
			Files:         pkg.Files,
			Pkg:           pkg.Types,
			TypesInfo:     pkg.Info,
			ImportedFacts: facts.importedFor(a, pkg.Imports),
		}
		if err := a.Run(pass); err != nil {
			fmt.Fprintf(os.Stderr, "fqlint: %s on %s: %v\n", a.Name, pkg.PkgPath, err)
			continue
		}
		facts.record(a, pkg.PkgPath, pass.ExportedFacts())
		out = append(out, pass.Diagnostics()...)
	}
	return out
}
