// Machine-readable findings for CI artifacts and editor integrations:
// fqlint -json prints one JSON object with a findings array (file, line,
// col, analyzer, message), sorted by position — stable enough to diff
// across runs.
package main

import (
	"encoding/json"

	"fusionq/internal/lint/analysis"
)

type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

type jsonReport struct {
	Findings []jsonFinding `json:"findings"`
}

// renderJSON encodes sorted diagnostics as the -json report.
func renderJSON(diags []analysis.Diagnostic) ([]byte, error) {
	report := jsonReport{Findings: []jsonFinding{}}
	for _, d := range diags {
		report.Findings = append(report.Findings, jsonFinding{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	return json.MarshalIndent(report, "", "  ")
}
