// Command fqd runs the multi-tenant fusion-query service: a long-lived
// mediator that answers fusion queries over the wire protocol with
// admission control, per-tenant quotas, a plan cache and a shared answer
// cache (DESIGN.md §16).
//
// Usage:
//
//	fqd -addr 127.0.0.1:7080 -scenario synth -sources 4 -realtime 0.2
//
// Flags:
//
//	-addr addr      listen address (default 127.0.0.1:7080)
//	-admin addr     serve /metrics, /metrics.json and /healthz here
//	-scenario s     dmv | synth (default dmv)
//	-sources n      synth: number of sources (default 4)
//	-tuples n       synth: tuples per source (default 80)
//	-universe n     synth: distinct entities drawn from (default 150)
//	-conds n        synth: number of conditions (default 3)
//	-seed n         data and network seed (default 1)
//	-realtime s     simulated exchanges take wall-clock time at scale s
//	                (0 disables; 1.0 = full simulated latency)
//	-algo a         optimization algorithm (default sja+)
//	-max-inflight n concurrently executing queries (default 8)
//	-queue n        waiters beyond that before shedding (default 2×inflight)
//	-rate r         per-tenant queries/sec quota (0 = no quotas)
//	-burst n        per-tenant burst allowance (default max(1, rate))
//	-plan-entries n plan-cache capacity (0 disables, default 256)
//	-answer-ttl d   answer-cache TTL (default 30s; 0 keeps the default,
//	                use -answer-entries -1 to disable the cache)
//	-answer-entries n  answer-cache entry bound (default 1024, -1 disables)
//	-drain d        graceful-shutdown budget on SIGINT/SIGTERM (default 10s)
//
// The served data is a self-contained simulated deployment: the paper's
// Figure 1 DMV scenario or a seeded synthetic overlap workload, behind a
// simulated network whose per-source links have distinct latencies. With
// -realtime, exchanges take real wall-clock time, so cache hits and plan
// reuse show up as measurable latency differences — that is what
// cmd/fqload measures.
//
// On SIGINT or SIGTERM the server stops accepting queries (new arrivals
// are shed with the draining reason), waits up to -drain for in-flight
// queries, then exits. A second signal forces immediate shutdown.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fusionq/internal/core"
	"fusionq/internal/obs"
	"fusionq/internal/service"
)

// options collects the flag values; one struct keeps run/start signatures
// readable.
type options struct {
	addr, admin   string
	deploy        service.DeployConfig
	algo          string
	maxInflight   int
	queue         int
	rate          float64
	burst         float64
	planEntries   int
	answerTTL     time.Duration
	answerEntries int
	drain         time.Duration
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "127.0.0.1:7080", "listen address")
	flag.StringVar(&o.admin, "admin", "", "serve /metrics and /healthz on this address")
	flag.StringVar(&o.deploy.Scenario, "scenario", "dmv", "scenario: dmv | synth")
	flag.IntVar(&o.deploy.Sources, "sources", 0, "synth: number of sources")
	flag.IntVar(&o.deploy.Tuples, "tuples", 0, "synth: tuples per source")
	flag.IntVar(&o.deploy.Universe, "universe", 0, "synth: entity universe size")
	flag.IntVar(&o.deploy.Conds, "conds", 0, "synth: number of conditions")
	flag.Int64Var(&o.deploy.Seed, "seed", 1, "data and network seed")
	flag.Float64Var(&o.deploy.RealTime, "realtime", 0, "real-time scale for simulated exchanges (0 disables)")
	flag.StringVar(&o.algo, "algo", string(core.AlgoSJAPlus), "optimization algorithm")
	flag.IntVar(&o.maxInflight, "max-inflight", 8, "concurrently executing queries")
	flag.IntVar(&o.queue, "queue", 0, "admission queue depth (default 2×inflight)")
	flag.Float64Var(&o.rate, "rate", 0, "per-tenant queries/sec quota (0 = none)")
	flag.Float64Var(&o.burst, "burst", 0, "per-tenant burst allowance")
	flag.IntVar(&o.planEntries, "plan-entries", 256, "plan-cache capacity (0 disables)")
	flag.DurationVar(&o.answerTTL, "answer-ttl", 30*time.Second, "answer-cache TTL")
	flag.IntVar(&o.answerEntries, "answer-entries", 1024, "answer-cache entry bound (-1 disables)")
	flag.DurationVar(&o.drain, "drain", 10*time.Second, "graceful-shutdown budget on SIGINT/SIGTERM")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintf(os.Stderr, "fqd: %v\n", err)
		os.Exit(1)
	}
}

func run(o options) error {
	srv, admin, err := start(o)
	if err != nil {
		return err
	}
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("draining; signal again to force shutdown")
	ctx, cancel := context.WithTimeout(context.Background(), o.drain)
	defer cancel()
	go func() {
		<-sig
		cancel()
	}()
	if admin != nil {
		_ = admin.Close()
	}
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "fqd: forced shutdown: %v\n", err)
	}
	return nil
}

// start builds the deployment and begins serving it; callers own both
// returned servers' lifetimes (the admin server is nil without -admin).
func start(o options) (*service.Server, *obs.AdminServer, error) {
	reg := obs.NewRegistry()
	o.deploy.Metrics = reg
	dep, err := o.deploy.Build()
	if err != nil {
		return nil, nil, err
	}
	eng := service.NewEngine(dep.Mediator, service.Config{
		Admission: service.AdmissionConfig{
			MaxInflight: o.maxInflight,
			MaxQueue:    o.queue,
			TenantRate:  o.rate,
			TenantBurst: o.burst,
		},
		PlanEntries: o.planEntries,
		Answers: service.AnswerCacheConfig{
			TTL:        o.answerTTL,
			MaxEntries: o.answerEntries,
		},
		Options: core.Options{Algorithm: core.Algorithm(o.algo)},
		Metrics: reg,
	})
	srv, err := service.Serve(eng, o.addr, service.ServerConfig{Metrics: reg})
	if err != nil {
		return nil, nil, err
	}
	var admin *obs.AdminServer
	if o.admin != "" {
		admin, err = obs.ServeAdminConfig(o.admin, obs.AdminConfig{Registry: reg})
		if err != nil {
			_ = srv.Close()
			return nil, nil, err
		}
		fmt.Printf("admin endpoint on http://%s/metrics\n", admin.Addr())
	}
	fmt.Printf("fqd serving %s scenario (%d sources, %d conditions) on %s\n",
		o.deploy.Scenario, len(dep.Scenario.Sources), len(dep.Scenario.Conds), srv.Addr())
	return srv, admin, nil
}
