// Command fqbench runs the experiment suite that regenerates the paper's
// worked-example economics and validates its quantitative claims. The
// tables it prints are the ones recorded in EXPERIMENTS.md.
//
// Usage:
//
//	fqbench            # run all experiments
//	fqbench -e E3      # run one experiment
//	fqbench -list      # list experiments
//	fqbench -json      # emit results as JSON (for BENCH_*.json trajectories)
//
// The -parallel and -conns flags set executor defaults honored by the
// experiments that execute plans (where the knob is not itself the swept
// variable): -parallel overlaps each round's exchanges, -conns caps
// per-source concurrent connections.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"fusionq/internal/bench"
)

func main() {
	var (
		expID    = flag.String("e", "", "run a single experiment by id (e.g. E3)")
		list     = flag.Bool("list", false, "list experiments and exit")
		jsonOut  = flag.Bool("json", false, "emit results as a JSON array of tables")
		parallel = flag.Bool("parallel", false, "run experiment executors in parallel mode")
		conns    = flag.Int("conns", 0, "per-source connection capacity for parallel executors (0: link default)")
		timeout  = flag.Duration("timeout", 0, "per-experiment wall-clock budget (0: none)")
	)
	flag.Parse()
	bench.Parallel = *parallel
	bench.Conns = *conns

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	var tables []*bench.Table
	run := func(e bench.Experiment) error {
		ctx := context.Background()
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		table, err := e.Run(ctx)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if *jsonOut {
			tables = append(tables, table)
		} else {
			fmt.Println(table.Render())
		}
		return nil
	}

	if *expID != "" {
		e, ok := bench.ByID(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "fqbench: unknown experiment %q (use -list)\n", *expID)
			os.Exit(2)
		}
		if err := run(e); err != nil {
			fmt.Fprintf(os.Stderr, "fqbench: %v\n", err)
			os.Exit(1)
		}
	} else {
		for _, e := range bench.All() {
			if err := run(e); err != nil {
				fmt.Fprintf(os.Stderr, "fqbench: %v\n", err)
				os.Exit(1)
			}
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(tables); err != nil {
			fmt.Fprintf(os.Stderr, "fqbench: %v\n", err)
			os.Exit(1)
		}
	}
}
