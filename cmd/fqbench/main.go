// Command fqbench runs the experiment suite that regenerates the paper's
// worked-example economics and validates its quantitative claims. The
// tables it prints are the ones recorded in EXPERIMENTS.md.
//
// Usage:
//
//	fqbench                 # run all experiments
//	fqbench -e E3           # run one experiment
//	fqbench -list           # list experiments
//	fqbench -json           # emit results as JSON (for BENCH_*.json trajectories)
//	fqbench -trace-json f   # export the run's span trace as JSON to f
//
// The -parallel and -conns flags set executor defaults honored by the
// experiments that execute plans (where the knob is not itself the swept
// variable): -parallel overlaps each round's exchanges, -conns caps
// per-source concurrent connections.
//
// With -json the output is one object: {"tables": [...], "metrics": [...]},
// where metrics is the run's whole registry (query counters, cache hit/miss
// counters, retry counters, latency histograms) accumulated across every
// executed experiment — the perf-trajectory numbers CI archives alongside
// the tables. With -trace-json, every mediator query any experiment runs
// records its spans into one trace, written to the given file ("-" for
// stdout) when the run completes.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"fusionq/internal/bench"
	"fusionq/internal/obs"
)

// output is the -json document: the experiment tables plus the run's
// metrics registry snapshot.
type output struct {
	Tables  []*bench.Table     `json:"tables"`
	Metrics []obs.MetricFamily `json:"metrics"`
}

func main() {
	var (
		expID     = flag.String("e", "", "run a single experiment by id (e.g. E3)")
		list      = flag.Bool("list", false, "list experiments and exit")
		jsonOut   = flag.Bool("json", false, "emit results as JSON: {tables, metrics}")
		parallel  = flag.Bool("parallel", false, "run experiment executors in parallel mode")
		conns     = flag.Int("conns", 0, "per-source connection capacity for parallel executors (0: link default)")
		timeout   = flag.Duration("timeout", 0, "per-experiment wall-clock budget (0: none)")
		traceJSON = flag.String("trace-json", "", `write the run's span trace as JSON to this file ("-" for stdout)`)
	)
	flag.Parse()
	bench.Parallel = *parallel
	bench.Conns = *conns

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	// One observability scope for the whole run: every experiment's queries
	// meter into reg, and (with -trace-json) record spans into tr. Each
	// mediator query still mints its own query ID, so the trace segments
	// cleanly per query.
	reg := obs.NewRegistry()
	obs.DescribeAll(reg)
	var tr *obs.Trace
	if *traceJSON != "" {
		tr = obs.NewTrace()
	}
	baseCtx := obs.With(context.Background(), &obs.Obs{Metrics: reg, Trace: tr})

	var tables []*bench.Table
	run := func(e bench.Experiment) error {
		ctx := baseCtx
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		table, err := e.Run(ctx)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if *jsonOut {
			tables = append(tables, table)
		} else {
			fmt.Println(table.Render())
		}
		return nil
	}

	if *expID != "" {
		e, ok := bench.ByID(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "fqbench: unknown experiment %q (use -list)\n", *expID)
			os.Exit(2)
		}
		if err := run(e); err != nil {
			fmt.Fprintf(os.Stderr, "fqbench: %v\n", err)
			os.Exit(1)
		}
	} else {
		for _, e := range bench.All() {
			if err := run(e); err != nil {
				fmt.Fprintf(os.Stderr, "fqbench: %v\n", err)
				os.Exit(1)
			}
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(output{Tables: tables, Metrics: reg.Snapshot()}); err != nil {
			fmt.Fprintf(os.Stderr, "fqbench: %v\n", err)
			os.Exit(1)
		}
	}
	if *traceJSON != "" {
		data, err := tr.JSON()
		if err == nil {
			data = append(data, '\n')
			if *traceJSON == "-" {
				_, err = os.Stdout.Write(data)
			} else {
				err = os.WriteFile(*traceJSON, data, 0o644)
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "fqbench: writing trace: %v\n", err)
			os.Exit(1)
		}
	}
}
