// Command fqbench runs the experiment suite that regenerates the paper's
// worked-example economics and validates its quantitative claims. The
// tables it prints are the ones recorded in EXPERIMENTS.md.
//
// Usage:
//
//	fqbench            # run all experiments
//	fqbench -e E3      # run one experiment
//	fqbench -list      # list experiments
package main

import (
	"flag"
	"fmt"
	"os"

	"fusionq/internal/bench"
)

func main() {
	var (
		expID = flag.String("e", "", "run a single experiment by id (e.g. E3)")
		list  = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	run := func(e bench.Experiment) error {
		table, err := e.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Println(table.Render())
		return nil
	}

	if *expID != "" {
		e, ok := bench.ByID(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "fqbench: unknown experiment %q (use -list)\n", *expID)
			os.Exit(2)
		}
		if err := run(e); err != nil {
			fmt.Fprintf(os.Stderr, "fqbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	for _, e := range bench.All() {
		if err := run(e); err != nil {
			fmt.Fprintf(os.Stderr, "fqbench: %v\n", err)
			os.Exit(1)
		}
	}
}
