package main

import (
	"context"
	"errors"
	"strings"
	"testing"

	"fusionq/internal/fabric"
	"fusionq/internal/obs"
)

// TestRenderOnceAgainstLiveAdmin drives renderOnce against a real
// obs.ServeAdminConfig listener fed by a populated recorder and a scorecard
// function — the full fqtop path minus the screen loop.
func TestRenderOnceAgainstLiveAdmin(t *testing.T) {
	rec := obs.NewRecorder(obs.RecorderConfig{SlowThreshold: 1}) // everything is slow
	// One completed hedged query, one completed error, one still in flight.
	lq := rec.Begin("q-done-1", "V = 'dui' AND V = 'sp'")
	lq.Exchange("R1", "sq", 128)
	lq.Exchange("R2", "sjq", 512)
	rec.End(lq, obs.EndInfo{Items: 3, Hedges: 1})
	lq = rec.Begin("q-err-2", "V = 'x'")
	rec.End(lq, obs.EndInfo{Err: errors.New("replica roster exhausted")})
	inflight := rec.Begin("q-live-3", "V = 'y'")
	inflight.Exchange("R3", "sq", 64)

	reg := obs.NewRegistry()
	adm, err := obs.ServeAdminConfig("127.0.0.1:0", obs.AdminConfig{
		Registry: reg,
		Recorder: rec,
		Scorecards: func() any {
			return []fabric.Scorecard{{
				Logical: "dmv_ca", Endpoint: "dmv_ca_a", Breaker: "closed",
				EWMASeconds: 0.0012, Hedges: 4, HedgeWins: 2,
			}}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = adm.Close() }()

	var buf strings.Builder
	if err := renderOnce(context.Background(), &buf, newFeed(adm.Addr()), 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"LIVE QUERIES (1)", "q-live-3", "R3:1x/64B",
		"ENDPOINTS (1)", "dmv_ca", "dmv_ca_a", "closed",
		"SLOW / INTERESTING TAIL", "q-done-1", "q-err-2", "hedge×1", "error",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q:\n%s", want, out)
		}
	}
}

// TestRenderOnceEmptyAdmin checks fqtop works against a bare admin listener
// (no recorder, no scorecards) — the fqsource case.
func TestRenderOnceEmptyAdmin(t *testing.T) {
	adm, err := obs.ServeAdminConfig("127.0.0.1:0", obs.AdminConfig{Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = adm.Close() }()
	var buf strings.Builder
	if err := renderOnce(context.Background(), &buf, newFeed(adm.Addr()), 5); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"LIVE QUERIES (0)", "ENDPOINTS (0)", "SLOW / INTERESTING TAIL (0 of 0 retained)"} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q:\n%s", want, out)
		}
	}
}
