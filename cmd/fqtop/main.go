// Command fqtop is a live terminal view over a fusion mediator's admin
// endpoints — the observability analogue of top(1). It polls /debug/queries
// (in-flight queries), /debug/endpoints (per-endpoint replica-fabric
// scorecards) and /debug/traces (the flight recorder's retained tail) and
// renders one consolidated screen per interval.
//
// Usage:
//
//	fqtop -addr 127.0.0.1:9100
//
// Flags:
//
//	-addr addr    admin listener to poll (required), as served by
//	              fusionq -admin or any obs.ServeAdminConfig listener
//	-interval d   refresh interval (default 2s)
//	-once         render a single frame and exit (no screen clearing);
//	              useful in scripts and smoke tests
//	-tail n       slow/interesting records shown in the tail (default 10)
//
// The three panes:
//
//	LIVE      every in-flight query: elapsed time, current phase/step, and
//	          per-source exchange and byte counts from the live registry
//	ENDPOINTS one row per physical replica endpoint: breaker state, EWMA
//	          latency, in-flight exchanges, consecutive failures, hedges
//	          launched/won and failovers — the fabric's scorecard
//	TAIL      the newest retained interesting records (error, slow, hedged,
//	          failed-over, repaired) from the flight recorder, newest first
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"fusionq/internal/fabric"
	"fusionq/internal/obs"
)

func main() {
	var (
		addr     = flag.String("addr", "", "admin listener address to poll (required)")
		interval = flag.Duration("interval", 2*time.Second, "refresh interval")
		once     = flag.Bool("once", false, "render one frame and exit")
		tail     = flag.Int("tail", 10, "interesting records shown in the tail pane")
	)
	flag.Parse()
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "fqtop: -addr is required")
		os.Exit(2)
	}
	f := newFeed(*addr)
	if *once {
		if err := renderOnce(context.Background(), os.Stdout, f, *tail); err != nil {
			fmt.Fprintf(os.Stderr, "fqtop: %v\n", err)
			os.Exit(1)
		}
		return
	}
	for {
		var buf strings.Builder
		err := renderOnce(context.Background(), &buf, f, *tail)
		// Clear the screen between frames so the view updates in place.
		fmt.Print("\x1b[2J\x1b[H")
		if err != nil {
			fmt.Printf("fqtop: %v (retrying in %v)\n", err, *interval)
		} else {
			fmt.Print(buf.String())
		}
		time.Sleep(*interval)
	}
}

// feed fetches and decodes one admin listener's JSON endpoints.
type feed struct {
	base string
	cli  *http.Client
}

func newFeed(addr string) *feed {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &feed{base: strings.TrimSuffix(addr, "/"), cli: &http.Client{Timeout: 5 * time.Second}}
}

func (f *feed) get(ctx context.Context, path string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.base+path, nil)
	if err != nil {
		return fmt.Errorf("fqtop: %s: %w", path, err)
	}
	resp, err := f.cli.Do(req)
	if err != nil {
		return fmt.Errorf("fqtop: %s: %w", path, err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fqtop: %s: unexpected status %s", path, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		return fmt.Errorf("fqtop: %s: decode: %w", path, err)
	}
	return nil
}

// renderOnce polls the three debug endpoints and writes one frame to w.
func renderOnce(ctx context.Context, w io.Writer, f *feed, tailN int) error {
	var live struct {
		Queries []obs.LiveQueryInfo `json:"queries"`
	}
	var eps struct {
		Endpoints []fabric.Scorecard `json:"endpoints"`
	}
	var traces struct {
		Traces []obs.RecordSummary `json:"traces"`
	}
	if err := f.get(ctx, "/debug/queries", &live); err != nil {
		return err
	}
	if err := f.get(ctx, "/debug/endpoints", &eps); err != nil {
		return err
	}
	if err := f.get(ctx, "/debug/traces", &traces); err != nil {
		return err
	}
	fmt.Fprintf(w, "fqtop %s\n\n", f.base)
	renderLive(w, live.Queries)
	renderEndpoints(w, eps.Endpoints)
	renderTail(w, traces.Traces, tailN)
	return nil
}

func renderLive(w io.Writer, queries []obs.LiveQueryInfo) {
	fmt.Fprintf(w, "LIVE QUERIES (%d)\n", len(queries))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  QID\tELAPSED\tPHASE\tSTEP\tBYTES\tSOURCES")
	for _, q := range queries {
		fmt.Fprintf(tw, "  %s\t%s\t%s\t%s\t%d\t%s\n",
			q.QueryID, fmtUS(q.ElapsedUS), q.Phase, q.Step, q.Bytes, fmtSources(q.Sources))
	}
	_ = tw.Flush()
	fmt.Fprintln(w)
}

func fmtSources(src map[string]obs.LiveSourceInfo) string {
	if len(src) == 0 {
		return "-"
	}
	names := make([]string, 0, len(src))
	for name := range src {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, name := range names {
		s := src[name]
		parts = append(parts, fmt.Sprintf("%s:%dx/%dB", name, s.Exchanges, s.Bytes))
	}
	return strings.Join(parts, " ")
}

func renderEndpoints(w io.Writer, cards []fabric.Scorecard) {
	fmt.Fprintf(w, "ENDPOINTS (%d)\n", len(cards))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  LOGICAL\tENDPOINT\tBREAKER\tEWMA\tINFLIGHT\tFAILS\tHEDGES\tWINS\tFAILOVERS")
	for _, c := range cards {
		fmt.Fprintf(tw, "  %s\t%s\t%s\t%s\t%d\t%d\t%d\t%d\t%d\n",
			c.Logical, c.Endpoint, c.Breaker,
			(time.Duration(c.EWMASeconds * float64(time.Second))).Round(time.Microsecond),
			c.Inflight, c.ConsecFails, c.Hedges, c.HedgeWins, c.Failovers)
	}
	_ = tw.Flush()
	fmt.Fprintln(w)
}

func renderTail(w io.Writer, traces []obs.RecordSummary, n int) {
	// Newest first; interesting records (error/slow/hedged/failed-over/
	// repaired) ahead of sampled ones.
	interesting := make([]obs.RecordSummary, 0, len(traces))
	for i := len(traces) - 1; i >= 0; i-- {
		if !traces[i].Sampled {
			interesting = append(interesting, traces[i])
		}
	}
	if n > 0 && len(interesting) > n {
		interesting = interesting[:n]
	}
	fmt.Fprintf(w, "SLOW / INTERESTING TAIL (%d of %d retained)\n", len(interesting), len(traces))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  QID\tDUR\tSTATUS\tITEMS\tBYTES\tSPANS\tFLAGS")
	for _, t := range interesting {
		fmt.Fprintf(tw, "  %s\t%s\t%s\t%d\t%d\t%d\t%s\n",
			t.QueryID, fmtUS(t.DurationUS), t.Status, t.Items, t.Bytes, t.Spans, flags(t))
	}
	_ = tw.Flush()
}

// flags compresses a record's retention-relevant bits into a short tag list.
func flags(t obs.RecordSummary) string {
	var out []string
	if t.Slow {
		out = append(out, "slow")
	}
	if t.Hedges > 0 {
		out = append(out, fmt.Sprintf("hedge×%d", t.Hedges))
	}
	if t.Failovers > 0 {
		out = append(out, fmt.Sprintf("failover×%d", t.Failovers))
	}
	if t.Repaired {
		out = append(out, "repaired")
	}
	if len(out) == 0 {
		return "-"
	}
	return strings.Join(out, ",")
}

func fmtUS(us int64) string {
	return (time.Duration(us) * time.Microsecond).Round(10 * time.Microsecond).String()
}
