package main

import "testing"

func TestPrintAllFigures(t *testing.T) {
	for _, id := range []string{"2a", "2b", "2c", "5a", "5b", "5c", "5d"} {
		if err := printFigure(id); err != nil {
			t.Errorf("figure %s: %v", id, err)
		}
	}
}

func TestPrintFigureUnknown(t *testing.T) {
	if err := printFigure("9z"); err == nil {
		t.Fatal("unknown figure should fail")
	}
}

func TestPrintDMV(t *testing.T) {
	if err := printDMV(); err != nil {
		t.Fatalf("printDMV: %v", err)
	}
}

func TestPrintFigureAltFormats(t *testing.T) {
	jsonOut, dotOut = true, false
	defer func() { jsonOut, dotOut = false, false }()
	if err := printFigure("2a"); err != nil {
		t.Fatalf("json: %v", err)
	}
	jsonOut, dotOut = false, true
	if err := printFigure("5d"); err != nil {
		t.Fatalf("dot: %v", err)
	}
	if err := printDMV(); err != nil {
		t.Fatalf("dot dmv: %v", err)
	}
}
