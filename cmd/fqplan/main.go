// Command fqplan prints fusion-query plans in the paper's notation. With
// -figure it regenerates the worked examples of Figures 2 and 5; otherwise
// it optimizes the paper's DMV query with every algorithm and shows the
// resulting plans and costs side by side.
//
// Usage:
//
//	fqplan                  # all algorithms on the DMV example
//	fqplan -figure 2a       # Figure 2(a) filter plan
//	fqplan -figure 2b|2c|5a|5b|5c|5d
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"fusionq/internal/netsim"
	"fusionq/internal/optimizer"
	"fusionq/internal/plan"
	"fusionq/internal/source"
	"fusionq/internal/stats"
	"fusionq/internal/workload"
)

func main() {
	figure := flag.String("figure", "", "regenerate a paper figure: 2a, 2b, 2c, 5a, 5b, 5c, 5d")
	asJSON := flag.Bool("json", false, "emit plans as JSON instead of listings")
	asDOT := flag.Bool("dot", false, "emit plans as Graphviz DOT instead of listings")
	flag.Parse()

	jsonOut = *asJSON
	dotOut = *asDOT
	if *figure != "" {
		if err := printFigure(*figure); err != nil {
			fmt.Fprintf(os.Stderr, "fqplan: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := printDMV(); err != nil {
		fmt.Fprintf(os.Stderr, "fqplan: %v\n", err)
		os.Exit(1)
	}
}

// figureProblem builds the symbolic cost setting the figures are drawn in:
// uniform sources, a selective first condition.
func figureProblem(m, n int) (*optimizer.Problem, error) {
	sel := []float64{0.01, 0.1, 0.2}[:m]
	sts := make([]stats.SourceStats, n)
	profiles := make([]stats.SourceProfile, n)
	for j := 0; j < n; j++ {
		cc := make([]float64, m)
		for i := range cc {
			cc[i] = sel[i] * 1000
		}
		sts[j] = stats.SourceStats{Name: plan.SourceName(j), Tuples: 1000, DistinctItems: 1000, Bytes: 40000, CondCard: cc}
		profiles[j] = stats.SourceProfile{Name: plan.SourceName(j), PerQuery: 0.1, PerItemSent: 0.001, PerItemRecv: 0.001, PerByteLoad: 0.00001, Support: stats.SemijoinNative}
	}
	cs := workload.MustConds(m)
	table, err := stats.Build(cs, sts, profiles)
	if err != nil {
		return nil, err
	}
	names := make([]string, n)
	for j := range names {
		names[j] = plan.SourceName(j)
	}
	return &optimizer.Problem{Conds: cs, Sources: names, Table: table}, nil
}

func printFigure(id string) error {
	allSel := func(m, n int) [][]optimizer.Method {
		out := make([][]optimizer.Method, m)
		for i := range out {
			out[i] = make([]optimizer.Method, n)
		}
		return out
	}
	var (
		pr  *optimizer.Problem
		sk  optimizer.Sketch
		err error
	)
	switch id {
	case "2a", "2b", "2c":
		pr, err = figureProblem(3, 2)
		if err != nil {
			return err
		}
		choices := allSel(3, 2)
		switch id {
		case "2b":
			choices[1][0], choices[1][1] = optimizer.MethodSemijoin, optimizer.MethodSemijoin
		case "2c":
			choices[1][0] = optimizer.MethodSemijoin
		}
		sk = optimizer.Sketch{Ordering: []int{0, 1, 2}, Choices: choices, Class: "figure-" + id}
	case "5a", "5b", "5c", "5d":
		pr, err = figureProblem(2, 3)
		if err != nil {
			return err
		}
		choices := allSel(2, 3)
		choices[1][1] = optimizer.MethodSemijoin
		sk = optimizer.Sketch{Ordering: []int{0, 1}, Choices: choices, Class: "figure-" + id}
		switch id {
		case "5b":
			sk.Loaded = []bool{false, false, true}
		case "5c":
			sk.DiffPrune = true
		case "5d":
			sk.Loaded = []bool{false, false, true}
			sk.DiffPrune = true
		}
	default:
		return fmt.Errorf("unknown figure %q", id)
	}
	p, err := optimizer.BuildPlan(pr, sk)
	if err != nil {
		return err
	}
	est, err := plan.EstimateCost(p, pr.Table)
	if err != nil {
		return err
	}
	if done, err := emitAlt(p); done || err != nil {
		return err
	}
	fmt.Printf("Figure %s (estimated cost %.3f):\n%s", id, est.Cost, p)
	return nil
}

// jsonOut and dotOut switch plan output to JSON or Graphviz DOT.
var (
	jsonOut bool
	dotOut  bool
)

func emitJSON(p *plan.Plan) error {
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(data))
	return nil
}

func emitAlt(p *plan.Plan) (bool, error) {
	switch {
	case jsonOut:
		return true, emitJSON(p)
	case dotOut:
		fmt.Print(p.DOT())
		return true, nil
	default:
		return false, nil
	}
}

func printDMV() error {
	sc := workload.DMV()
	network := netsim.NewNetwork(1)
	link := netsim.DefaultLink()
	srcs := make([]source.Source, len(sc.Sources))
	profiles := make([]stats.SourceProfile, len(sc.Sources))
	for j, raw := range sc.Sources {
		network.SetLink(raw.Name(), link)
		srcs[j] = source.Instrument(raw, network)
		profiles[j] = stats.ProfileFromLink(raw.Name(), link, 3, stats.SupportOf(raw.Caps()))
	}
	table, err := stats.BuildFromSources(context.Background(), sc.Conds, srcs, profiles)
	if err != nil {
		return err
	}
	pr := &optimizer.Problem{Conds: sc.Conds, Sources: sc.SourceNames(), Table: table}

	fmt.Println("DMV example (Figure 1): find drivers with a dui AND an sp violation")
	fmt.Println()
	algos := []struct {
		name string
		fn   func(*optimizer.Problem) (optimizer.Result, error)
	}{
		{"FILTER", optimizer.Filter},
		{"SJ", optimizer.SJ},
		{"SJA", optimizer.SJA},
		{"SJA+", optimizer.SJAPlus},
		{"Greedy-SJA", optimizer.GreedySJA},
	}
	for _, a := range algos {
		res, err := a.fn(pr)
		if err != nil {
			return err
		}
		if done, err := emitAlt(res.Plan); err != nil {
			return err
		} else if done {
			continue
		}
		fmt.Printf("--- %s (estimated cost %.4f s) ---\n%s\n", a.name, res.Cost, res.Plan)
	}
	return nil
}
