// Command fqload drives a closed-loop load against the fusion-query
// service (cmd/fqd) and reports latency percentiles, throughput and cache
// hit counts (DESIGN.md §16).
//
// Usage:
//
//	fqload -addr 127.0.0.1:7080 -n 2000 -tenants 8
//	fqload -self -scenario synth -realtime 0.2 -duration 30s
//
// Flags:
//
//	-addr addr    fqd to dial (mutually exclusive with -self)
//	-self         start an in-process fqd on a loopback port and load it —
//	              one process, real TCP; this is what the CI soak runs
//	              under -race
//	-tenants n    simulated tenants (default 4)
//	-workers n    closed-loop workers, one query outstanding each (default 8)
//	-conns n      client connections the workers share (default workers)
//	-n n          total queries to fire (0 = run for -duration)
//	-duration d   wall-clock budget (0 = run until -n)
//	-stream f     fraction of queries using streaming execution (default 0.3)
//	-chunk n      ask the server to chunk answers at n items (0 = whole)
//	-seed n       per-worker randomness seed (default 1)
//	-mix spec     query pool: queries split by ';', conditions by ','
//	              (default: derived from the scenario flags)
//	-json file    also write the report as JSON ("-" for stdout)
//
// Scenario flags (-scenario, -sources, -tuples, -universe, -conds,
// -realtime, plus admission flags -max-inflight, -queue, -rate, -burst)
// configure the in-process server for -self, and — when -mix is absent —
// derive the default query pool, which must then match the scenario the
// dialed fqd serves. The pool covers every condition-list prefix and each
// single condition, so repeated draws hit both the cold path and the plan
// and answer caches.
//
// The loop is closed: each worker waits for its query's outcome before
// firing the next, so offered load adapts to service capacity and the
// reported percentiles are honest under admission control. Shed queries
// (typed rejections) are counted separately from errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"fusionq/internal/service"
)

// options collects the flag values.
type options struct {
	addr   string
	self   bool
	deploy service.DeployConfig
	load   service.LoadConfig
	conns  int
	chunk  int
	mix    string
	jsonTo string

	maxInflight int
	queue       int
	rate        float64
	burst       float64
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "", "fqd address to dial")
	flag.BoolVar(&o.self, "self", false, "start an in-process fqd and load it over loopback")
	flag.StringVar(&o.deploy.Scenario, "scenario", "dmv", "scenario: dmv | synth")
	flag.IntVar(&o.deploy.Sources, "sources", 0, "synth: number of sources")
	flag.IntVar(&o.deploy.Tuples, "tuples", 0, "synth: tuples per source")
	flag.IntVar(&o.deploy.Universe, "universe", 0, "synth: entity universe size")
	flag.IntVar(&o.deploy.Conds, "conds", 0, "synth: number of conditions")
	flag.Float64Var(&o.deploy.RealTime, "realtime", 0, "self: real-time scale for simulated exchanges")
	flag.IntVar(&o.maxInflight, "max-inflight", 8, "self: concurrently executing queries")
	flag.IntVar(&o.queue, "queue", 0, "self: admission queue depth")
	flag.Float64Var(&o.rate, "rate", 0, "self: per-tenant queries/sec quota (0 = none)")
	flag.Float64Var(&o.burst, "burst", 0, "self: per-tenant burst allowance")
	flag.IntVar(&o.load.Tenants, "tenants", 4, "simulated tenants")
	flag.IntVar(&o.load.Workers, "workers", 8, "closed-loop workers")
	flag.IntVar(&o.conns, "conns", 0, "client connections (default workers)")
	flag.IntVar(&o.load.Queries, "n", 0, "total queries (0 = use -duration)")
	flag.DurationVar(&o.load.Duration, "duration", 0, "wall-clock budget (0 = use -n)")
	flag.Float64Var(&o.load.StreamFraction, "stream", 0.3, "fraction of streaming queries")
	flag.IntVar(&o.chunk, "chunk", 0, "server-side answer chunk size (0 = whole)")
	flag.Int64Var(&o.load.Seed, "seed", 1, "randomness seed (data seed in -self mode too)")
	flag.StringVar(&o.mix, "mix", "", "query pool: 'c1,c2;c3' (default from scenario)")
	flag.StringVar(&o.jsonTo, "json", "", "write the JSON report here ('-' for stdout)")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintf(os.Stderr, "fqload: %v\n", err)
		os.Exit(1)
	}
}

func run(o options) error {
	if o.self == (o.addr != "") {
		return fmt.Errorf("need exactly one of -addr or -self")
	}
	if o.load.Queries <= 0 && o.load.Duration <= 0 {
		return fmt.Errorf("need -n or -duration")
	}
	o.deploy.Seed = o.load.Seed

	addr := o.addr
	if o.self {
		srv, err := selfServe(o)
		if err != nil {
			return err
		}
		defer srv.Close()
		addr = srv.Addr()
		fmt.Printf("in-process fqd on %s\n", addr)
	}

	mix, err := buildMix(o)
	if err != nil {
		return err
	}
	o.load.Mix = mix

	// SIGINT/SIGTERM stop the run cleanly; the partial report still prints.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	target, closeAll, err := dialPool(ctx, addr, o)
	if err != nil {
		return err
	}
	defer closeAll()

	report, err := service.RunLoad(ctx, target, o.load)
	if err != nil {
		return err
	}
	printReport(report)
	return writeJSON(o.jsonTo, report)
}

// selfServe starts the in-process fqd on a loopback port.
func selfServe(o options) (*service.Server, error) {
	dep, err := o.deploy.Build()
	if err != nil {
		return nil, err
	}
	eng := service.NewEngine(dep.Mediator, service.Config{
		Admission: service.AdmissionConfig{
			MaxInflight: o.maxInflight,
			MaxQueue:    o.queue,
			TenantRate:  o.rate,
			TenantBurst: o.burst,
		},
	})
	return service.Serve(eng, "127.0.0.1:0", service.ServerConfig{
		Logf: func(string, ...interface{}) {},
	})
}

// buildMix derives the query pool from -mix or the scenario flags.
func buildMix(o options) ([][]string, error) {
	if o.mix != "" {
		var mix [][]string
		for _, q := range strings.Split(o.mix, ";") {
			var conds []string
			for _, c := range strings.Split(q, ",") {
				if c = strings.TrimSpace(c); c != "" {
					conds = append(conds, c)
				}
			}
			if len(conds) > 0 {
				mix = append(mix, conds)
			}
		}
		if len(mix) == 0 {
			return nil, fmt.Errorf("-mix %q parsed to an empty pool", o.mix)
		}
		return mix, nil
	}
	// Build the scenario locally just for its condition vocabulary; in
	// -addr mode the scenario flags must match the server's.
	dep, err := o.deploy.Build()
	if err != nil {
		return nil, err
	}
	return dep.Mix(), nil
}

// pool fans queries out across a fixed set of clients round-robin by a
// channel of free clients, so -workers can exceed -conns.
type pool struct {
	free chan *service.Client
}

// Query implements service.Target.
func (p *pool) Query(ctx context.Context, tenant string, conds []string, stream bool) (*service.QueryReply, error) {
	var cl *service.Client
	select {
	case cl = <-p.free:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { p.free <- cl }()
	return cl.Query(ctx, tenant, conds, stream)
}

// dialPool connects -conns clients to addr.
func dialPool(ctx context.Context, addr string, o options) (service.Target, func(), error) {
	n := o.conns
	if n <= 0 {
		n = o.load.Workers
		if n <= 0 {
			n = 8
		}
	}
	p := &pool{free: make(chan *service.Client, n)}
	var all []*service.Client
	closeAll := func() {
		for _, cl := range all {
			_ = cl.Close()
		}
	}
	for i := 0; i < n; i++ {
		cl, err := service.DialService(ctx, addr)
		if err != nil {
			closeAll()
			return nil, nil, fmt.Errorf("dial %s: %w", addr, err)
		}
		cl.Chunk = o.chunk
		all = append(all, cl)
		p.free <- cl
	}
	return p, closeAll, nil
}

// printReport renders the human-readable summary.
func printReport(r *service.LoadReport) {
	fmt.Printf("queries   %d (answered %d, shed %d, errors %d)\n",
		r.Queries, r.Answered, r.Shed, r.Errors)
	fmt.Printf("cached    plan %d, answer %d\n", r.PlanCached, r.AnswerCached)
	fmt.Printf("latency   p50 %.2fms  p95 %.2fms  p99 %.2fms  mean %.2fms\n",
		r.Latency.P50, r.Latency.P95, r.Latency.P99, r.Latency.Mean)
	fmt.Printf("rate      %.1f answered/s over %.1fs\n", r.ThroughputQPS, r.ElapsedSec)
	if r.FirstError != "" {
		fmt.Printf("first err %s\n", r.FirstError)
	}
}

// writeJSON writes the report to path ("-" = stdout, "" = nowhere).
func writeJSON(path string, r *service.LoadReport) error {
	if path == "" {
		return nil
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
