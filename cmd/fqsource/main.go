// Command fqsource serves one CSV relation as an autonomous fusion-query
// source over the wire protocol, so mediators (cmd/fusionq or the library)
// can query it remotely.
//
// Usage:
//
//	fqsource -csv dmv_ca.csv -addr :7070 -caps bindings
//
// Flags:
//
//	-csv file    relation to serve (required)
//	-name name   source name (default: file basename)
//	-merge col   merge attribute (default: first column)
//	-addr addr   listen address (default 127.0.0.1:7070)
//	-caps tier   native | bindings | none (what the wrapper advertises)
//	-cache       answer repeated queries from a server-side cache
//	-admin addr  serve /metrics (Prometheus text), /metrics.json and
//	             /healthz on this address (e.g. 127.0.0.1:9090)
//	-drain d     graceful-shutdown budget on SIGINT/SIGTERM (default 5s)
//
// On SIGINT or SIGTERM the server stops accepting connections and waits up
// to -drain for in-flight requests to finish before forcing the remaining
// connections closed. A second signal forces immediate shutdown.
//
// With -cache, selection, binding and native-semijoin answers are recorded
// in an exec.Cache shared across every connection, so repeated identical
// queries from any mediator are answered without touching the relation.
// The cache is only as fresh as the served CSV, which this process never
// mutates, so it is always consistent here.
//
// With -admin, the process exposes its metrics registry over HTTP: wire
// request counts and latency per op, plus — when -cache is on — the cache's
// hit/miss counters. Request log lines carry the mediator's query ID
// (qid=...), so server-side logs correlate with mediator-side traces.
//
// # Serving as a replica
//
// Replica membership is a mediator-side concept: an fqsource process is
// just one physical endpoint, and it is the mediator's catalog that groups
// endpoints into a logical source. Run one fqsource per replica — each
// with its own -name and -addr, all serving the same relation — and name
// the shared logical source with "replicaOf" in the catalog:
//
//	fqsource -csv ca.csv -name dmv_ca_a -addr :7070 &
//	fqsource -csv ca.csv -name dmv_ca_b -addr :7071 &
//
//	{"name": "dmv_ca_a", "remote": "127.0.0.1:7070", "replicaOf": "dmv_ca"},
//	{"name": "dmv_ca_b", "remote": "127.0.0.1:7071", "replicaOf": "dmv_ca"}
//
// The mediator then plans against "dmv_ca" only; replica selection, hedged
// exchanges and failover happen in its source fabric (DESIGN.md §13), so
// killing one of the processes mid-query costs a failover, not the answer.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"fusionq/internal/csvio"
	"fusionq/internal/exec"
	"fusionq/internal/obs"
	"fusionq/internal/source"
	"fusionq/internal/wire"
)

func main() {
	var (
		csvPath   = flag.String("csv", "", "CSV file to serve (required)")
		name      = flag.String("name", "", "source name (default: file basename)")
		merge     = flag.String("merge", "", "merge attribute (default: first column)")
		addr      = flag.String("addr", "127.0.0.1:7070", "listen address")
		capsFlag  = flag.String("caps", "native", "capabilities: native | bindings | none")
		cache     = flag.Bool("cache", false, "answer repeated queries from a server-side cache")
		adminAddr = flag.String("admin", "", "serve /metrics and /healthz on this address")
		drain     = flag.Duration("drain", 5*time.Second, "graceful-shutdown budget on SIGINT/SIGTERM")
	)
	flag.Parse()
	if err := run(*csvPath, *name, *merge, *addr, *capsFlag, *cache, *adminAddr, *drain); err != nil {
		fmt.Fprintf(os.Stderr, "fqsource: %v\n", err)
		os.Exit(1)
	}
}

func run(csvPath, name, merge, addr, capsFlag string, cache bool, adminAddr string, drain time.Duration) error {
	srv, admin, err := start(csvPath, name, merge, addr, capsFlag, cache, adminAddr)
	if err != nil {
		return err
	}
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("draining; signal again to force shutdown")
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	go func() {
		<-sig
		cancel()
	}()
	if admin != nil {
		_ = admin.Close()
	}
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "fqsource: forced shutdown: %v\n", err)
	}
	return nil
}

// start loads the relation and begins serving it, plus the admin listener
// when adminAddr is non-empty; callers own both returned servers' lifetimes
// (the admin server is nil without -admin).
func start(csvPath, name, merge, addr, capsFlag string, cache bool, adminAddr string) (*wire.Server, *obs.AdminServer, error) {
	if csvPath == "" {
		return nil, nil, fmt.Errorf("-csv is required")
	}
	rel, err := csvio.Load(csvPath, merge)
	if err != nil {
		return nil, nil, err
	}
	if name == "" {
		name = strings.TrimSuffix(filepath.Base(csvPath), filepath.Ext(csvPath))
	}
	var caps source.Capabilities
	switch capsFlag {
	case "native":
		caps = source.Capabilities{NativeSemijoin: true, PassedBindings: true}
	case "bindings":
		caps = source.Capabilities{PassedBindings: true}
	case "none":
		caps = source.Capabilities{}
	default:
		return nil, nil, fmt.Errorf("unknown capability tier %q", capsFlag)
	}

	var src source.Source = source.NewWrapper(name, source.NewRowBackend(rel), caps)
	if cache {
		src = exec.NewCachedSource(src, exec.NewCache())
	}
	reg := obs.NewRegistry()
	srv, err := wire.ServeConfig(src, addr, wire.Config{Metrics: reg})
	if err != nil {
		return nil, nil, err
	}
	var admin *obs.AdminServer
	if adminAddr != "" {
		// No flight recorder on a source server (queries begin at the
		// mediator); the /debug/* endpoints serve empty collections so any
		// admin listener feeds cmd/fqtop.
		admin, err = obs.ServeAdminConfig(adminAddr, obs.AdminConfig{Registry: reg})
		if err != nil {
			_ = srv.Close()
			return nil, nil, err
		}
		fmt.Printf("admin endpoint on http://%s/metrics\n", admin.Addr())
	}
	fmt.Printf("serving %s (%d tuples, %s) on %s\n", name, rel.Len(), caps, srv.Addr())
	return srv, admin, nil
}
