package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"fusionq/internal/cond"
	"fusionq/internal/set"
	"fusionq/internal/wire"
)

func writeCSV(t *testing.T) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "dmv.csv")
	data := "L,V,D\nJ55,dui,1993\nT21,sp,1994\nT80,dui,1993\n"
	if err := os.WriteFile(p, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestStartServesRelation(t *testing.T) {
	srv, err := start(writeCSV(t), "", "", "127.0.0.1:0", "native", false)
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer srv.Close()

	cli, err := wire.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if cli.Name() != "dmv" {
		t.Fatalf("name = %q, want file basename", cli.Name())
	}
	got, err := cli.Select(context.Background(), cond.MustParse("V = 'dui'"))
	if err != nil {
		t.Fatal(err)
	}
	if want := set.New("J55", "T80"); !got.Equal(want) {
		t.Fatalf("remote sq = %v, want %v", got, want)
	}
}

// TestStartWithCache checks the -cache path: repeated queries — even from
// separate connections — are answered from the server-side cache and agree
// with the uncached answers.
func TestStartWithCache(t *testing.T) {
	srv, err := start(writeCSV(t), "", "", "127.0.0.1:0", "native", true)
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer srv.Close()

	want := set.New("J55", "T80")
	for i := 0; i < 2; i++ {
		cli, err := wire.Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		got, err := cli.Select(context.Background(), cond.MustParse("V = 'dui'"))
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("conn %d: sq = %v, want %v", i, got, want)
		}
		ok, err := cli.SelectBinding(context.Background(), cond.MustParse("V = 'sp'"), "T21")
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("conn %d: binding T21 should match", i)
		}
		cli.Close()
	}
}

func TestStartCapabilityTiers(t *testing.T) {
	csv := writeCSV(t)
	for tier, wantNative := range map[string]bool{"native": true, "bindings": false, "none": false} {
		srv, err := start(csv, "s-"+tier, "", "127.0.0.1:0", tier, false)
		if err != nil {
			t.Fatalf("%s: %v", tier, err)
		}
		cli, err := wire.Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		if cli.Caps().NativeSemijoin != wantNative {
			t.Errorf("%s: native = %v", tier, cli.Caps().NativeSemijoin)
		}
		cli.Close()
		srv.Close()
	}
}

func TestStartErrors(t *testing.T) {
	if _, err := start("", "", "", "127.0.0.1:0", "native", false); err == nil {
		t.Error("missing csv should fail")
	}
	if _, err := start("/nonexistent.csv", "", "", "127.0.0.1:0", "native", false); err == nil {
		t.Error("missing file should fail")
	}
	if _, err := start(writeCSV(t), "", "", "127.0.0.1:0", "wizard", false); err == nil {
		t.Error("bad caps should fail")
	}
	if _, err := start(writeCSV(t), "", "", "256.256.256.256:0", "native", false); err == nil {
		t.Error("bad address should fail")
	}
}
