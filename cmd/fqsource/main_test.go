package main

import (
	"bytes"
	"context"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"fusionq/internal/cond"
	"fusionq/internal/core"
	"fusionq/internal/netsim"
	"fusionq/internal/obs"
	"fusionq/internal/set"
	"fusionq/internal/wire"
)

func writeCSV(t *testing.T) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "dmv.csv")
	data := "L,V,D\nJ55,dui,1993\nT21,sp,1994\nT80,dui,1993\n"
	if err := os.WriteFile(p, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestStartServesRelation(t *testing.T) {
	srv, _, err := start(writeCSV(t), "", "", "127.0.0.1:0", "native", false, "")
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer srv.Close()

	cli, err := wire.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if cli.Name() != "dmv" {
		t.Fatalf("name = %q, want file basename", cli.Name())
	}
	got, err := cli.Select(context.Background(), cond.MustParse("V = 'dui'"))
	if err != nil {
		t.Fatal(err)
	}
	if want := set.New("J55", "T80"); !got.Equal(want) {
		t.Fatalf("remote sq = %v, want %v", got, want)
	}
}

// TestStartWithCache checks the -cache path: repeated queries — even from
// separate connections — are answered from the server-side cache and agree
// with the uncached answers.
func TestStartWithCache(t *testing.T) {
	srv, _, err := start(writeCSV(t), "", "", "127.0.0.1:0", "native", true, "")
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer srv.Close()

	want := set.New("J55", "T80")
	for i := 0; i < 2; i++ {
		cli, err := wire.Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		got, err := cli.Select(context.Background(), cond.MustParse("V = 'dui'"))
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("conn %d: sq = %v, want %v", i, got, want)
		}
		ok, err := cli.SelectBinding(context.Background(), cond.MustParse("V = 'sp'"), "T21")
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("conn %d: binding T21 should match", i)
		}
		cli.Close()
	}
}

func TestStartCapabilityTiers(t *testing.T) {
	csv := writeCSV(t)
	for tier, wantNative := range map[string]bool{"native": true, "bindings": false, "none": false} {
		srv, _, err := start(csv, "s-"+tier, "", "127.0.0.1:0", tier, false, "")
		if err != nil {
			t.Fatalf("%s: %v", tier, err)
		}
		cli, err := wire.Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		if cli.Caps().NativeSemijoin != wantNative {
			t.Errorf("%s: native = %v", tier, cli.Caps().NativeSemijoin)
		}
		cli.Close()
		srv.Close()
	}
}

// TestStartWithAdmin checks the -admin listener: after a query-scoped
// request, the Prometheus scrape covers the canonical vocabulary (query and
// retry counters, a latency histogram) and carries live wire series.
func TestStartWithAdmin(t *testing.T) {
	srv, admin, err := start(writeCSV(t), "", "", "127.0.0.1:0", "native", true, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer srv.Close()
	defer admin.Close()

	cli, err := wire.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	ctx := obs.With(context.Background(), &obs.Obs{QueryID: obs.NewQueryID()})
	if _, err := cli.Select(ctx, cond.MustParse("V = 'dui'")); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + admin.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		// Live series from the meta + sq requests just served.
		`fq_wire_requests_total{op="sq"} 1`,
		`fq_wire_request_seconds_bucket{le="+Inf"} 2`,
		// Server-side cache series (the -cache decorator's miss).
		`fq_cache_misses_total{source="dmv"} 1`,
		// Vocabulary headers rendered even without local series.
		"# TYPE fq_queries_total counter",
		"# TYPE fq_retries_total counter",
		"# TYPE fq_query_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	if t.Failed() {
		t.Fatalf("scrape was:\n%s", text)
	}
}

func TestStartErrors(t *testing.T) {
	if _, _, err := start("", "", "", "127.0.0.1:0", "native", false, ""); err == nil {
		t.Error("missing csv should fail")
	}
	if _, _, err := start("/nonexistent.csv", "", "", "127.0.0.1:0", "native", false, ""); err == nil {
		t.Error("missing file should fail")
	}
	if _, _, err := start(writeCSV(t), "", "", "127.0.0.1:0", "wizard", false, ""); err == nil {
		t.Error("bad caps should fail")
	}
	if _, _, err := start(writeCSV(t), "", "", "256.256.256.256:0", "native", false, ""); err == nil {
		t.Error("bad address should fail")
	}
}

// TestQueryCorrelationAcrossTwoServers is the end-to-end observability
// check: one mediator query against two wire-backed fqsource servers must
// produce a single trace in which every source-exchange span carries the
// query's ID — and the same ID must appear in both servers' wire logs, so
// the mediator trace and the fqsource logs can be joined offline.
func TestQueryCorrelationAcrossTwoServers(t *testing.T) {
	dir := t.TempDir()
	for name, data := range map[string]string{
		"s1.csv": "L,V,D\nJ55,dui,1993\nT21,sp,1994\nT80,dui,1993\n",
		"s2.csv": "L,V,D\nT21,dui,1996\nJ55,sp,1996\nT11,sp,1993\n",
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var servers []*wire.Server
	for _, name := range []string{"s1", "s2"} {
		srv, _, err := start(filepath.Join(dir, name+".csv"), name, "", "127.0.0.1:0", "native", false, "")
		if err != nil {
			t.Fatalf("start %s: %v", name, err)
		}
		defer srv.Close()
		servers = append(servers, srv)
	}

	// start wires the servers to the stdlib logger; capture it for the
	// duration of the query so the qid=... correlation lines are visible.
	var logBuf syncBuffer
	prev := log.Writer()
	log.SetOutput(&logBuf)
	defer log.SetOutput(prev)

	var clients []*wire.Client
	for _, srv := range servers {
		cli, err := wire.Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer cli.Close()
		clients = append(clients, cli)
	}
	m := core.New(clients[0].Schema())
	m.SetNetwork(netsim.NewNetwork(1))
	for _, cli := range clients {
		if err := m.AddSourceLink(cli, netsim.DefaultLink()); err != nil {
			t.Fatal(err)
		}
	}

	sql := "SELECT u1.L FROM U u1, U u2 WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp'"
	ans, err := m.Query(sql, core.Options{Algorithm: "sja", Spans: true})
	if err != nil {
		t.Fatal(err)
	}
	if ans.QueryID == "" || ans.Trace == nil {
		t.Fatalf("answer missing observability: qid=%q trace=%v", ans.QueryID, ans.Trace)
	}

	// Mediator side: every exchange span belongs to this query.
	exchanges := 0
	for _, sp := range ans.Trace.Export() {
		if sp.Kind == obs.KindExchange {
			exchanges++
			if sp.QueryID != ans.QueryID {
				t.Errorf("exchange span %q has qid %q, want %q", sp.Name, sp.QueryID, ans.QueryID)
			}
		}
	}
	if exchanges == 0 {
		t.Fatal("trace has no exchange spans")
	}

	// Server side: both fqsource processes logged the same qid.
	logs := logBuf.String()
	for _, src := range []string{"s1", "s2"} {
		want := "wire: qid=" + ans.QueryID + " op="
		found := false
		for _, line := range strings.Split(logs, "\n") {
			if strings.Contains(line, want) && strings.Contains(line, "source="+src) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("server %s never logged qid %s; logs:\n%s", src, ans.QueryID, logs)
		}
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for capturing log output from
// concurrent server connections.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
