package main

import (
	"strings"
	"testing"

	"fusionq/internal/core"
)

// replMediator assembles a mediator from the DMV CSVs for REPL tests.
func replMediator(t *testing.T) *core.Mediator {
	t.Helper()
	csvs := writeCSVs(t)
	m, closer, err := assemble(csvs, nil, "", "", "native")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(closer)
	return m
}

func TestReplQueryAndCommands(t *testing.T) {
	m := replMediator(t)
	in := strings.NewReader(strings.Join([]string{
		`\help`,
		`\algo sja`,
		`\trace on`,
		dmvSQL,
		`\trace off`,
		`\parallel on`,
		dmvSQL,
		`\explain ` + dmvSQL,
		`\quit`,
	}, "\n"))
	var out strings.Builder
	if err := repl(m, in, &out, core.Options{}); err != nil {
		t.Fatalf("repl: %v", err)
	}
	text := out.String()
	for _, want := range []string{
		"algorithm: sja",
		"trace: true",
		"answer (2 items): {J55, T21}",
		"sq(c1,", // trace rendering
		"parallel: true",
		"plan (semijoin-adaptive",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("repl output missing %q:\n%s", want, text)
		}
	}
}

func TestReplErrorsAreRecoverable(t *testing.T) {
	m := replMediator(t)
	in := strings.NewReader(strings.Join([]string{
		`SELECT broken (`,
		`\unknown`,
		dmvSQL,
	}, "\n"))
	var out strings.Builder
	if err := repl(m, in, &out, core.Options{}); err != nil {
		t.Fatalf("repl: %v", err)
	}
	text := out.String()
	if !strings.Contains(text, "error:") {
		t.Fatalf("bad SQL should print an error:\n%s", text)
	}
	if !strings.Contains(text, "unknown command") {
		t.Fatalf("unknown command should be reported:\n%s", text)
	}
	if !strings.Contains(text, "answer (2 items)") {
		t.Fatalf("session should recover and answer:\n%s", text)
	}
}

func TestReplEOFExitsCleanly(t *testing.T) {
	m := replMediator(t)
	var out strings.Builder
	if err := repl(m, strings.NewReader(""), &out, core.Options{}); err != nil {
		t.Fatalf("repl on empty input: %v", err)
	}
}
