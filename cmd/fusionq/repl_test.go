package main

import (
	"fmt"
	"strings"
	"testing"

	"fusionq/internal/core"
)

// replMediator assembles a mediator from the DMV CSVs for REPL tests.
func replMediator(t *testing.T) *core.Mediator {
	t.Helper()
	csvs := writeCSVs(t)
	m, closer, err := assemble(csvs, nil, "", "", "native")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(closer)
	return m
}

func TestReplQueryAndCommands(t *testing.T) {
	m := replMediator(t)
	in := strings.NewReader(strings.Join([]string{
		`\help`,
		`\algo sja`,
		`\trace on`,
		dmvSQL,
		`\trace off`,
		`\parallel on`,
		dmvSQL,
		`\explain ` + dmvSQL,
		`\quit`,
	}, "\n"))
	var out strings.Builder
	if err := repl(m, in, &out, core.Options{}); err != nil {
		t.Fatalf("repl: %v", err)
	}
	text := out.String()
	for _, want := range []string{
		"algorithm: sja",
		"trace: true",
		"answer (2 items): {J55, T21}",
		"sq(c1,", // trace rendering
		"parallel: true",
		"plan (semijoin-adaptive",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("repl output missing %q:\n%s", want, text)
		}
	}
}

// TestReplCacheCountersResetPerQuery runs the same query twice with the
// answer cache on and checks the reported hit/miss counters are per-query:
// the first run misses, the second is answered from the cache — and the
// second report must not fold in the first query's misses (the cache itself
// persists across the session; its cumulative Stats() would).
func TestReplCacheCountersResetPerQuery(t *testing.T) {
	m := replMediator(t)
	in := strings.NewReader(strings.Join([]string{
		// sja issues sq/sjq source queries (the default-link plan loads whole
		// relations, which the answer cache deliberately does not cover).
		`\algo sja`,
		`\cache on`,
		dmvSQL,
		dmvSQL,
		`\quit`,
	}, "\n"))
	var out strings.Builder
	if err := repl(m, in, &out, core.Options{}); err != nil {
		t.Fatalf("repl: %v", err)
	}
	text := out.String()
	if !strings.Contains(text, "cache: true") {
		t.Fatalf("\\cache on not acknowledged:\n%s", text)
	}
	var reports []string
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(strings.TrimPrefix(line, "fusionq> "), "cache: ") && strings.Contains(line, "hits") {
			reports = append(reports, strings.TrimPrefix(line, "fusionq> "))
		}
	}
	if len(reports) != 2 {
		t.Fatalf("want 2 per-query cache reports, got %d:\n%s", len(reports), text)
	}
	var h1, m1, h2, m2 int
	if _, err := fmt.Sscanf(reports[0], "cache: %d hits, %d misses", &h1, &m1); err != nil {
		t.Fatalf("parsing %q: %v", reports[0], err)
	}
	if _, err := fmt.Sscanf(reports[1], "cache: %d hits, %d misses", &h2, &m2); err != nil {
		t.Fatalf("parsing %q: %v", reports[1], err)
	}
	if h1 != 0 || m1 == 0 {
		t.Errorf("first query should be all misses, got %s", reports[0])
	}
	if h2 == 0 {
		t.Errorf("second query should hit the cache, got %s", reports[1])
	}
	if m2 >= m1 {
		t.Errorf("second query's misses (%d) should drop below the first's (%d): counters must not accumulate", m2, m1)
	}
}

func TestReplErrorsAreRecoverable(t *testing.T) {
	m := replMediator(t)
	in := strings.NewReader(strings.Join([]string{
		`SELECT broken (`,
		`\unknown`,
		dmvSQL,
	}, "\n"))
	var out strings.Builder
	if err := repl(m, in, &out, core.Options{}); err != nil {
		t.Fatalf("repl: %v", err)
	}
	text := out.String()
	if !strings.Contains(text, "error:") {
		t.Fatalf("bad SQL should print an error:\n%s", text)
	}
	if !strings.Contains(text, "unknown command") {
		t.Fatalf("unknown command should be reported:\n%s", text)
	}
	if !strings.Contains(text, "answer (2 items)") {
		t.Fatalf("session should recover and answer:\n%s", text)
	}
}

func TestReplEOFExitsCleanly(t *testing.T) {
	m := replMediator(t)
	var out strings.Builder
	if err := repl(m, strings.NewReader(""), &out, core.Options{}); err != nil {
		t.Fatalf("repl on empty input: %v", err)
	}
}
