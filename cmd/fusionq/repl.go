package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"strings"

	"fusionq/internal/core"
	"fusionq/internal/exec"
	"fusionq/internal/sqlparse"
)

// repl reads fusion-query SQL statements (one per line) from in and
// executes them against the mediator, printing answers to out. Lines
// starting with a backslash are commands:
//
//	\algo NAME       switch the optimization algorithm
//	\trace on|off    toggle per-step execution traces
//	\parallel on|off toggle parallel round execution
//	\cache on|off    toggle the mediator answer cache
//	\explain SQL     print the plan for SQL without executing
//	\help            list commands
//	\quit            exit
func repl(m *core.Mediator, in io.Reader, out io.Writer, opts core.Options) error {
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Fprintf(out, "fusionq> connected to %d sources; \\help for commands\n", len(m.Sources()))
	prompt := func() { fmt.Fprint(out, "fusionq> ") }
	prompt()
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		switch {
		case line == "":
		case line == `\quit` || line == `\q`:
			return nil
		case line == `\help`:
			fmt.Fprintln(out, `commands: \algo NAME, \trace on|off, \parallel on|off, \cache on|off, \explain SQL, \quit`)
		case strings.HasPrefix(line, `\algo `):
			opts.Algorithm = core.Algorithm(strings.TrimSpace(strings.TrimPrefix(line, `\algo `)))
			fmt.Fprintf(out, "algorithm: %s\n", opts.Algorithm)
		case strings.HasPrefix(line, `\trace`):
			opts.Trace = strings.Contains(line, "on")
			fmt.Fprintf(out, "trace: %v\n", opts.Trace)
		case strings.HasPrefix(line, `\parallel`):
			opts.Parallel = strings.Contains(line, "on")
			fmt.Fprintf(out, "parallel: %v\n", opts.Parallel)
		case strings.HasPrefix(line, `\cache`):
			opts.Cache = strings.Contains(line, "on")
			fmt.Fprintf(out, "cache: %v\n", opts.Cache)
		case strings.HasPrefix(line, `\explain `):
			sql := strings.TrimPrefix(line, `\explain `)
			if err := replExplain(m, out, sql, opts); err != nil {
				fmt.Fprintf(out, "error: %v\n", err)
			}
		case strings.HasPrefix(line, `\`):
			fmt.Fprintf(out, "unknown command %q (\\help lists commands)\n", line)
		default:
			if err := replQuery(m, out, line, opts); err != nil {
				fmt.Fprintf(out, "error: %v\n", err)
			}
		}
		prompt()
	}
	return scanner.Err()
}

func replExplain(m *core.Mediator, out io.Writer, sql string, opts core.Options) error {
	fq, err := sqlparse.ParseFusion(sql, m.Schema())
	if err != nil {
		return err
	}
	res, err := m.Plan(context.Background(), fq.Conds, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "plan (%s, estimated cost %.4f s):\n%s", res.Plan.Class, res.Cost, res.Plan)
	return nil
}

func replQuery(m *core.Mediator, out io.Writer, sql string, opts core.Options) error {
	ans, err := m.Query(sql, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "answer (%d items): %s\n", ans.Items.Len(), ans.Items)
	fmt.Fprintf(out, "plan: %s, estimated %.4f s, %d queries, total work %v\n",
		ans.Plan.Class, ans.EstimatedCost, ans.Exec.SourceQueries, ans.Exec.TotalWork)
	if opts.Cache {
		// Per-query counters from Answer.Exec, deliberately NOT the shared
		// cache's cumulative Stats(): the cache itself outlives queries in a
		// REPL session, but each answer reports only its own consultations.
		fmt.Fprintf(out, "cache: %d hits, %d misses\n", ans.Exec.CacheHits, ans.Exec.CacheMisses)
	}
	if opts.Trace {
		fmt.Fprint(out, exec.RenderTrace(ans.Exec.Trace))
	}
	return nil
}
