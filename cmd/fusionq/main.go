// Command fusionq runs a fusion query end to end: it registers local CSV
// sources and/or remote wire sources, detects the fusion pattern in the SQL,
// optimizes with the chosen algorithm, executes the plan, and reports the
// answer and the execution accounting.
//
// Usage:
//
//	fusionq -sql "SELECT u1.L FROM U u1, U u2 WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp'" \
//	        -csv r1.csv -csv r2.csv -csv r3.csv
//
//	fusionq -sql "..." -remote 10.0.0.1:7070 -remote 10.0.0.2:7070
//
// Flags:
//
//	-csv file       local CSV source (repeatable); name is the file basename
//	-remote addr    remote wire source (repeatable)
//	-catalog file   JSON catalog describing all sources (replaces -csv/-remote)
//	-merge col      merge attribute (default: first CSV column)
//	-algo name      filter | sj | sja | sja+ | greedy-sj | greedy-sja | greedy-sja+
//	-caps tier      capability tier for CSV sources: native | bindings | none
//	-parallel       execute each round's source queries concurrently
//	-conns n        per-source connection capacity for -parallel (0: link's MaxConns)
//	-cache          answer repeated source queries from the mediator cache
//	-explain        print the plan without executing it
//	-fetch          run the second phase and print the full records
//	-timeout d      per-query wall-clock budget (e.g. 5s; 0 means none)
//	-trace-json f   write the query's span trace (query → plan phases →
//	                steps → retry attempts → exchanges) as JSON to f
//	                ("-" for stdout), for offline analysis
//	-spans          print the query's span tree; exchanges over wire-backed
//	                sources show the mediator-wait / server-work / wire-time
//	                split from the server's grafted timing fragment
//	-admin addr     serve the admin endpoints (/metrics, /debug/queries,
//	                /debug/traces, /debug/trace?qid=, /debug/endpoints) —
//	                the feed of cmd/fqtop
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"fusionq/internal/catalog"
	"fusionq/internal/core"
	"fusionq/internal/csvio"
	"fusionq/internal/exec"
	"fusionq/internal/netsim"
	"fusionq/internal/obs"
	"fusionq/internal/relation"
	"fusionq/internal/source"
	"fusionq/internal/sqlparse"
	"fusionq/internal/wire"
)

type stringList []string

func (s *stringList) String() string { return strings.Join(*s, ",") }

func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	var (
		csvs      stringList
		remotes   stringList
		sql       = flag.String("sql", "", "fusion query in SQL form (required)")
		merge     = flag.String("merge", "", "merge attribute for CSV sources (default: first column)")
		algo      = flag.String("algo", "sja+", "optimization algorithm")
		capsFlag  = flag.String("caps", "native", "CSV source capabilities: native | bindings | none")
		parallel  = flag.Bool("parallel", false, "execute rounds concurrently")
		conns     = flag.Int("conns", 0, "per-source connection capacity for -parallel (0: use each link's MaxConns)")
		cache     = flag.Bool("cache", false, "answer repeated source queries from the mediator's cache")
		catalogF  = flag.String("catalog", "", "JSON catalog of sources (replaces -csv/-remote)")
		explain   = flag.Bool("explain", false, "print the plan, do not execute")
		timeout   = flag.Duration("timeout", 0, "per-query wall-clock budget (0: none)")
		fetch     = flag.Bool("fetch", false, "run the second phase and print full records")
		trace     = flag.Bool("trace", false, "print a per-step execution trace")
		stream    = flag.Bool("stream", false, "execute as a pull-based streaming pipeline (bounded batches, early first answer)")
		batch     = flag.Int("batch", 0, "streaming batch size for -stream (0: default)")
		traceJSON = flag.String("trace-json", "", `write the query's span trace as JSON to this file ("-" for stdout)`)
		spans     = flag.Bool("spans", false, "print the query's span tree with per-exchange wait/server/wire split")
		admin     = flag.String("admin", "", "serve admin endpoints (/metrics, /debug/*) on this address (e.g. 127.0.0.1:9100)")
		shell     = flag.Bool("i", false, "interactive shell: read SQL statements from stdin")
	)
	flag.Var(&csvs, "csv", "local CSV source file (repeatable)")
	flag.Var(&remotes, "remote", "remote source address (repeatable)")
	flag.Parse()

	if *shell {
		m, closer, err := assemble(csvs, remotes, *catalogF, *merge, *capsFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fusionq: %v\n", err)
			os.Exit(1)
		}
		defer closer()
		if *admin != "" {
			adm, err := serveAdmin(m, *admin)
			if err != nil {
				fmt.Fprintf(os.Stderr, "fusionq: %v\n", err)
				os.Exit(1)
			}
			defer func() { _ = adm.Close() }()
			fmt.Fprintf(os.Stderr, "fusionq: admin endpoints on http://%s\n", adm.Addr())
		}
		opts := core.Options{Algorithm: core.Algorithm(*algo), Parallel: *parallel, Conns: *conns, Cache: *cache, Trace: *trace, Timeout: *timeout, Streaming: *stream, BatchSize: *batch}
		if err := repl(m, os.Stdin, os.Stdout, opts); err != nil {
			fmt.Fprintf(os.Stderr, "fusionq: %v\n", err)
			os.Exit(1)
		}
		return
	}
	opts := core.Options{Algorithm: core.Algorithm(*algo), Parallel: *parallel, Conns: *conns, Cache: *cache, Trace: *trace, Spans: *traceJSON != "" || *spans, Timeout: *timeout, Streaming: *stream, BatchSize: *batch}
	if err := run(*sql, csvs, remotes, *catalogF, *merge, *capsFlag, opts, *explain, *fetch, *traceJSON, *spans, *admin); err != nil {
		fmt.Fprintf(os.Stderr, "fusionq: %v\n", err)
		os.Exit(1)
	}
}

// serveAdmin starts the admin listener over the mediator's observability
// state: a dedicated metrics registry, the always-on flight recorder, and
// the replica-fabric scorecards.
func serveAdmin(m *core.Mediator, addr string) (*obs.AdminServer, error) {
	reg := obs.NewRegistry()
	m.SetMetrics(reg)
	return obs.ServeAdminConfig(addr, obs.AdminConfig{
		Registry:   reg,
		Recorder:   m.Recorder(),
		Scorecards: func() any { return m.Scorecards() },
	})
}

func parseCaps(tier string) (source.Capabilities, error) {
	switch tier {
	case "native":
		return source.Capabilities{NativeSemijoin: true, PassedBindings: true}, nil
	case "bindings":
		return source.Capabilities{PassedBindings: true}, nil
	case "none":
		return source.Capabilities{}, nil
	default:
		return source.Capabilities{}, fmt.Errorf("unknown capability tier %q", tier)
	}
}

func run(sql string, csvs, remotes []string, catalogPath, merge, capsFlag string, opts core.Options, explain, fetch bool, traceJSON string, spans bool, adminAddr string) error {
	if sql == "" {
		return fmt.Errorf("-sql is required")
	}
	m, closer, err := assemble(csvs, remotes, catalogPath, merge, capsFlag)
	if err != nil {
		return err
	}
	defer closer()
	if adminAddr != "" {
		adm, err := serveAdmin(m, adminAddr)
		if err != nil {
			return err
		}
		defer func() { _ = adm.Close() }()
		fmt.Fprintf(os.Stderr, "fusionq: admin endpoints on http://%s\n", adm.Addr())
	}
	schema := m.Schema()

	if explain {
		fq, err := sqlparse.ParseFusion(sql, schema)
		if err != nil {
			return err
		}
		res, err := m.Plan(context.Background(), fq.Conds, core.Options{Algorithm: opts.Algorithm, Conns: opts.Conns})
		if err != nil {
			return err
		}
		fmt.Printf("plan (%s, estimated cost %.4f s):\n%s", res.Plan.Class, res.Cost, res.Plan)
		return nil
	}

	ans, err := m.Query(sql, opts)
	if ans != nil && traceJSON != "" {
		// A failed query that reached execution still has a partial trace
		// worth exporting.
		if werr := writeTrace(ans, traceJSON); werr != nil && err == nil {
			err = werr
		}
	}
	if err != nil {
		return err
	}
	if opts.Spans {
		fmt.Printf("query id: %s\n", ans.QueryID)
	}
	fmt.Printf("answer (%d items): %s\n", ans.Items.Len(), ans.Items)
	fmt.Printf("plan class: %s, estimated cost %.4f s\n", ans.Plan.Class, ans.EstimatedCost)
	fmt.Printf("execution: %d source queries, total work %v, response time %v\n",
		ans.Exec.SourceQueries, ans.Exec.TotalWork, ans.Exec.ResponseTime)
	if opts.Streaming && ans.Exec.FirstAnswer > 0 {
		fmt.Printf("streaming: first answer after %v, peak intermediate bytes %d\n",
			ans.Exec.FirstAnswer, ans.Exec.PeakBytes)
	}
	if opts.Cache {
		fmt.Printf("cache: %d hits, %d misses\n", ans.Exec.CacheHits, ans.Exec.CacheMisses)
	}
	if opts.Trace {
		fmt.Printf("\ntrace:\n%s", exec.RenderTrace(ans.Exec.Trace))
	}
	if spans && ans.Trace != nil {
		fmt.Printf("\nspans:\n%s", obs.RenderTrace(ans.Trace.Export()))
	}

	if fetch && !ans.Items.IsEmpty() {
		fetchCtx := context.Background()
		if opts.Timeout > 0 {
			var cancel context.CancelFunc
			fetchCtx, cancel = context.WithTimeout(fetchCtx, opts.Timeout)
			defer cancel()
		}
		full, err := m.FetchContext(fetchCtx, ans.Items)
		if err != nil {
			return err
		}
		fmt.Printf("\nphase two: %d full records\n%s", full.Len(), full)
	}
	return nil
}

// writeTrace exports the answer's span trace as JSON to path ("-" means
// stdout).
func writeTrace(ans *core.Answer, path string) error {
	if ans.Trace == nil {
		return nil
	}
	data, err := ans.Trace.JSON()
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// assemble builds the mediator either from a catalog file or from the
// -csv/-remote flags.
func assemble(csvs, remotes []string, catalogPath, merge, capsFlag string) (*core.Mediator, func(), error) {
	if catalogPath != "" {
		cat, err := catalog.Load(catalogPath)
		if err != nil {
			return nil, nil, err
		}
		return cat.Build()
	}
	if len(csvs)+len(remotes) == 0 {
		return nil, nil, fmt.Errorf("register at least one -csv or -remote source, or use -catalog")
	}
	caps, err := parseCaps(capsFlag)
	if err != nil {
		return nil, nil, err
	}

	var (
		sources []source.Source
		schema  *relation.Schema
		closers []func()
	)
	closeAll := func() {
		for _, f := range closers {
			f()
		}
	}
	for _, path := range csvs {
		rel, err := csvio.Load(path, merge)
		if err != nil {
			closeAll()
			return nil, nil, err
		}
		if schema == nil {
			schema = rel.Schema()
		} else if !schema.Compatible(rel.Schema()) {
			closeAll()
			return nil, nil, fmt.Errorf("%s: schema %s incompatible with %s", path, rel.Schema(), schema)
		}
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		sources = append(sources, source.NewWrapper(name, source.NewRowBackend(rel), caps))
	}
	for _, addr := range remotes {
		cli, err := wire.Dial(addr)
		if err != nil {
			closeAll()
			return nil, nil, err
		}
		closers = append(closers, func() { _ = cli.Close() })
		if schema == nil {
			schema = cli.Schema()
		} else if !schema.Compatible(cli.Schema()) {
			closeAll()
			return nil, nil, fmt.Errorf("%s: remote schema %s incompatible with %s", addr, cli.Schema(), schema)
		}
		sources = append(sources, cli)
	}

	m := core.New(schema)
	m.SetNetwork(netsim.NewNetwork(1))
	for _, src := range sources {
		if err := m.AddSourceLink(src, netsim.DefaultLink()); err != nil {
			closeAll()
			return nil, nil, err
		}
	}
	return m, closeAll, nil
}
