package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"fusionq/internal/core"
	"fusionq/internal/obs"
	"fusionq/internal/source"
	"fusionq/internal/wire"
	"fusionq/internal/workload"
)

const (
	r1CSV = "L,V,D\nJ55,dui,1993\nT21,sp,1994\nT80,dui,1993\n"
	r2CSV = "L,V,D\nT21,dui,1996\nJ55,sp,1996\nT11,sp,1993\n"
	r3CSV = "L,V,D\nT21,sp,1993\nS07,sp,1996\nS07,sp,1993\n"
)

const dmvSQL = "SELECT u1.L FROM U u1, U u2 WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp'"

func writeCSVs(t *testing.T) []string {
	t.Helper()
	dir := t.TempDir()
	paths := make([]string, 0, 3)
	for name, data := range map[string]string{"r1.csv": r1CSV, "r2.csv": r2CSV, "r3.csv": r3CSV} {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	return paths
}

func TestRunEndToEnd(t *testing.T) {
	csvs := writeCSVs(t)
	for _, algo := range []string{"filter", "sja", "sja+", "rt-sja"} {
		if err := run(dmvSQL, csvs, nil, "", "", "native", core.Options{Algorithm: core.Algorithm(algo), Trace: true}, false, true, "", false, ""); err != nil {
			t.Fatalf("algo %s: %v", algo, err)
		}
	}
}

func TestRunExplain(t *testing.T) {
	csvs := writeCSVs(t)
	if err := run(dmvSQL, csvs, nil, "", "", "bindings", core.Options{Algorithm: "sja"}, true, false, "", false, ""); err != nil {
		t.Fatalf("explain: %v", err)
	}
}

func TestRunParallel(t *testing.T) {
	csvs := writeCSVs(t)
	if err := run(dmvSQL, csvs, nil, "", "", "none", core.Options{Algorithm: "filter", Parallel: true, Trace: true}, false, false, "", false, ""); err != nil {
		t.Fatalf("parallel: %v", err)
	}
	opts := core.Options{Algorithm: "sja", Parallel: true, Conns: 2, Cache: true}
	if err := run(dmvSQL, csvs, nil, "", "", "bindings", opts, false, false, "", false, ""); err != nil {
		t.Fatalf("parallel conns+cache: %v", err)
	}
}

func TestRunWithRemoteSource(t *testing.T) {
	csvs := writeCSVs(t)
	// Serve R3's data over TCP and mix it with two local CSVs.
	sc := workload.DMV()
	srv, err := wire.Serve(source.NewWrapper("remote3", source.NewRowBackend(sc.Relations[2]),
		source.Capabilities{NativeSemijoin: true, PassedBindings: true}), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := run(dmvSQL, csvs[:2], []string{srv.Addr()}, "", "", "native", core.Options{Algorithm: "sja+"}, false, false, "", false, ""); err != nil {
		t.Fatalf("remote mix: %v", err)
	}
}

// TestRunTraceJSON exports a span trace and checks its shape: one root
// query span whose query ID every span shares, with plan/execute phases and
// at least one step beneath.
func TestRunTraceJSON(t *testing.T) {
	csvs := writeCSVs(t)
	path := filepath.Join(t.TempDir(), "trace.json")
	opts := core.Options{Algorithm: "sja", Spans: true}
	if err := run(dmvSQL, csvs, nil, "", "", "native", opts, false, false, path, false, ""); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var spans []obs.SpanData
	if err := json.Unmarshal(data, &spans); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	if len(spans) < 4 {
		t.Fatalf("trace has %d spans, want query+phases+steps", len(spans))
	}
	kinds := map[string]int{}
	for _, sp := range spans {
		kinds[sp.Kind]++
		if sp.QueryID == "" || sp.QueryID != spans[0].QueryID {
			t.Fatalf("span %d qid %q diverges from %q", sp.ID, sp.QueryID, spans[0].QueryID)
		}
	}
	if kinds[obs.KindQuery] != 1 || kinds[obs.KindPhase] < 2 || kinds[obs.KindStep] < 1 {
		t.Fatalf("span kinds = %v", kinds)
	}
}

func TestRunErrors(t *testing.T) {
	csvs := writeCSVs(t)
	cases := []struct {
		name string
		f    func() error
	}{
		{"no sql", func() error {
			return run("", csvs, nil, "", "", "native", core.Options{Algorithm: "sja"}, false, false, "", false, "")
		}},
		{"no sources", func() error {
			return run(dmvSQL, nil, nil, "", "", "native", core.Options{Algorithm: "sja"}, false, false, "", false, "")
		}},
		{"bad caps", func() error {
			return run(dmvSQL, csvs, nil, "", "", "wizard", core.Options{Algorithm: "sja"}, false, false, "", false, "")
		}},
		{"bad algo", func() error {
			return run(dmvSQL, csvs, nil, "", "", "native", core.Options{Algorithm: "wizard"}, false, false, "", false, "")
		}},
		{"missing file", func() error {
			return run(dmvSQL, []string{"/nonexistent/x.csv"}, nil, "", "", "native", core.Options{Algorithm: "sja"}, false, false, "", false, "")
		}},
		{"bad remote", func() error {
			return run(dmvSQL, nil, []string{"127.0.0.1:1"}, "", "", "native", core.Options{Algorithm: "sja"}, false, false, "", false, "")
		}},
		{"not fusion", func() error {
			return run("SELECT u1.V FROM U u1", csvs, nil, "", "", "native", core.Options{Algorithm: "sja"}, false, false, "", false, "")
		}},
	}
	for _, c := range cases {
		if err := c.f(); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestRunIncompatibleSchemas(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.csv")
	b := filepath.Join(dir, "b.csv")
	if err := os.WriteFile(a, []byte("L,V\nx,dui\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(b, []byte("K,W,Z\ny,sp,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	sql := "SELECT u1.L FROM U u1 WHERE u1.V = 'dui'"
	if err := run(sql, []string{a, b}, nil, "", "", "native", core.Options{Algorithm: "sja"}, false, false, "", false, ""); err == nil {
		t.Fatal("incompatible schemas should fail")
	}
}

func TestRunWithCatalog(t *testing.T) {
	dir := t.TempDir()
	for name, data := range map[string]string{"r1.csv": r1CSV, "r2.csv": r2CSV, "r3.csv": r3CSV} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	catJSON := `{"merge": "L", "sources": [
	  {"csv": "r1.csv"}, {"csv": "r2.csv", "caps": "bindings"}, {"csv": "r3.csv", "caps": "none"}
	]}`
	path := filepath.Join(dir, "catalog.json")
	if err := os.WriteFile(path, []byte(catJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(dmvSQL, nil, nil, path, "", "native", core.Options{Algorithm: "sja"}, false, false, "", false, ""); err != nil {
		t.Fatalf("catalog run: %v", err)
	}
	if err := run(dmvSQL, nil, nil, "/nonexistent.json", "", "native", core.Options{Algorithm: "sja"}, false, false, "", false, ""); err == nil {
		t.Fatal("missing catalog should fail")
	}
}

func TestParseCaps(t *testing.T) {
	n, err := parseCaps("native")
	if err != nil || !n.NativeSemijoin || !n.PassedBindings {
		t.Fatalf("native = %+v, %v", n, err)
	}
	bnd, err := parseCaps("bindings")
	if err != nil || bnd.NativeSemijoin || !bnd.PassedBindings {
		t.Fatalf("bindings = %+v, %v", bnd, err)
	}
	none, err := parseCaps("none")
	if err != nil || none.NativeSemijoin || none.PassedBindings {
		t.Fatalf("none = %+v, %v", none, err)
	}
	if _, err := parseCaps("x"); err == nil {
		t.Fatal("unknown tier should fail")
	}
}
