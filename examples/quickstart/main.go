// Quickstart: the smallest end-to-end use of the fusion-query engine.
//
// It builds two overlapping in-memory sources, registers them with a
// mediator, runs a fusion query in SQL, and prints the answer and the plan
// that produced it.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"fusionq/internal/core"
	"fusionq/internal/netsim"
	"fusionq/internal/relation"
	"fusionq/internal/source"
)

func main() {
	// The common view every source wrapper exports: ID is the merge
	// attribute identifying the real-world entity.
	schema := relation.MustSchema("ID",
		relation.Column{Name: "ID", Kind: relation.KindString},
		relation.Column{Name: "Tag", Kind: relation.KindString},
		relation.Column{Name: "Score", Kind: relation.KindInt},
	)

	// Two autonomous sources with overlapping, incomplete information.
	r1 := relation.NewRelation(schema)
	r1.MustInsert(relation.String("alpha"), relation.String("go"), relation.Int(9))
	r1.MustInsert(relation.String("beta"), relation.String("db"), relation.Int(7))
	r1.MustInsert(relation.String("gamma"), relation.String("go"), relation.Int(3))

	r2 := relation.NewRelation(schema)
	r2.MustInsert(relation.String("alpha"), relation.String("db"), relation.Int(8))
	r2.MustInsert(relation.String("beta"), relation.String("go"), relation.Int(2))
	r2.MustInsert(relation.String("delta"), relation.String("db"), relation.Int(5))

	// A mediator over a simulated wide-area network.
	m := core.New(schema)
	m.SetNetwork(netsim.NewNetwork(1))
	caps := source.Capabilities{NativeSemijoin: true, PassedBindings: true}
	for name, rel := range map[string]*relation.Relation{"S1": r1, "S2": r2} {
		src := source.NewWrapper(name, source.NewRowBackend(rel), caps)
		if err := m.AddSourceLink(src, netsim.DefaultLink()); err != nil {
			log.Fatal(err)
		}
	}

	// A fusion query: entities that have a 'go' record somewhere AND a
	// high-score record somewhere (possibly at a different source).
	sql := `SELECT u1.ID FROM U u1, U u2
	        WHERE u1.ID = u2.ID AND u1.Tag = 'go' AND u2.Score >= 7`
	ans, err := m.Query(sql, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("answer: %s\n\n", ans.Items)
	fmt.Printf("plan (%s, estimated cost %.4f s):\n%s\n", ans.Plan.Class, ans.EstimatedCost, ans.Plan)
	fmt.Printf("executed %d source queries, total work %v\n", ans.Exec.SourceQueries, ans.Exec.TotalWork)

	// Phase two: fetch the full records of the matching entities.
	full, err := m.Fetch(ans.Items)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfull records of the answer entities:\n%s", full)
}
