// Adaptive: mid-query re-optimization under condition dependence — the
// runtime answer to the paper's caveat that SJA is provably optimal only
// for independent conditions (Section 1, point 3).
//
// The workload correlates its condition attributes, so the optimizer's
// independence-based cardinality estimates are badly wrong: the running set
// after round two is far larger than predicted, and the static plan's
// committed semijoins ship it expensively. Adaptive execution measures the
// running set after every round and re-decides the remaining conditions and
// per-source methods, recovering the cost of the best static ordering
// without ever searching orderings.
//
// Run with: go run ./examples/adaptive
package main

import (
	"fmt"
	"log"
	"time"

	"fusionq/internal/core"
	"fusionq/internal/netsim"
	"fusionq/internal/workload"
)

func main() {
	// A narrow link makes item transfers the dominant cost; c1 and c2
	// share their threshold and the data couples A2 to A1, so an item
	// passing c1 almost always passes c2.
	link := netsim.Link{Latency: 10 * time.Millisecond, BytesPerSec: 2048, RequestOverhead: 5 * time.Millisecond}
	sc, err := workload.Synth(workload.SynthConfig{
		Seed: 13, NumSources: 5, TuplesPerSource: 700, Universe: 450,
		Selectivity: []float64{0.06, 0.06, 0.15},
		Correlation: 0.9,
	})
	if err != nil {
		log.Fatal(err)
	}

	build := func() *core.Mediator {
		m := core.New(sc.Schema)
		m.SetNetwork(netsim.NewNetwork(1))
		for _, src := range sc.Sources {
			if err := m.AddSourceLink(src, link); err != nil {
				log.Fatal(err)
			}
		}
		return m
	}

	sql := `SELECT u1.ID FROM U u1, U u2, U u3
	        WHERE u1.ID = u2.ID AND u2.ID = u3.ID
	          AND u1.A1 < 61 AND u2.A2 < 61 AND u3.A3 < 151`
	fmt.Printf("query (A2 copies A1 on 90%% of tuples — heavily correlated):\n%s\n\n", sql)

	static, err := build().Query(sql, core.Options{Algorithm: core.AlgoSJA})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("static SJA:  %3d answers, measured total work %v\n",
		static.Items.Len(), static.Exec.TotalWork)
	fmt.Printf("static plan:\n%s\n", static.Plan)

	adaptive, err := build().Query(sql, core.Options{Adaptive: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adaptive:    %3d answers, measured total work %v\n",
		adaptive.Items.Len(), adaptive.Exec.TotalWork)
	fmt.Printf("executed steps (decided round by round):\n%s\n", adaptive.Plan)

	if !adaptive.Items.Equal(static.Items) {
		log.Fatal("answers diverged")
	}
	saving := 1 - float64(adaptive.Exec.TotalWork)/float64(static.Exec.TotalWork)
	fmt.Printf("adaptive saved %.0f%% of the static plan's measured work\n", saving*100)
}
