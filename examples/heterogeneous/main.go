// Heterogeneous: the scenario the semijoin-adaptive class was designed for
// (Section 2.5). Four sources differ in storage model, semijoin capability
// and link quality:
//
//	R1 — row store, native semijoins, fast link
//	R2 — OEM semistructured store, passed bindings only (semijoins must be
//	     emulated, one selection per item), medium link
//	R3 — key–value store, selection-only (semijoins impossible), slow link
//	R4 — served over real TCP by a wire server in this process, native
//
// SJ must send the same kind of query to every source in a round, so R3
// forces it away from semijoins; SJA picks per source, and SJA+ may load a
// tiny source outright. The example prints each plan and its measured cost.
//
// Run with: go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"
	"time"

	"fusionq/internal/core"
	"fusionq/internal/netsim"
	"fusionq/internal/oem"
	"fusionq/internal/source"
	"fusionq/internal/wire"
	"fusionq/internal/workload"
)

func main() {
	// Synthesize four overlapping sources, then rebuild each on a
	// different backend with different capabilities.
	sc, err := workload.Synth(workload.SynthConfig{
		Seed: 11, NumSources: 4, TuplesPerSource: 400, Universe: 250,
		Selectivity: []float64{0.05, 0.5},
	})
	if err != nil {
		log.Fatal(err)
	}
	schema := sc.Schema

	// R1: row store, full capability.
	r1 := source.NewWrapper("R1", source.NewRowBackend(sc.Relations[0]),
		source.Capabilities{NativeSemijoin: true, PassedBindings: true})

	// R2: OEM store behind a wrapper, passed bindings only.
	st := oem.NewStore()
	for _, t := range sc.Relations[1].Rows() {
		children := make([]*oem.Object, schema.NumColumns())
		for i, c := range schema.Columns() {
			children[i] = oem.Atomic(c.Name, t[i])
		}
		st.Add(oem.Complex("rec", children...))
	}
	r2 := source.NewWrapper("R2", source.NewOEMBackend(st, oem.Mapping{Schema: schema}),
		source.Capabilities{PassedBindings: true})

	// R3: key–value store, selection-only.
	kv := source.NewKVBackend(schema)
	for _, t := range sc.Relations[2].Rows() {
		if err := kv.Put(t); err != nil {
			log.Fatal(err)
		}
	}
	r3 := source.NewWrapper("R3", kv, source.Capabilities{})

	// R4: a row store served over real TCP within this process.
	r4local := source.NewWrapper("R4", source.NewRowBackend(sc.Relations[3]),
		source.Capabilities{NativeSemijoin: true, PassedBindings: true})
	srv, err := wire.Serve(r4local, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	r4, err := wire.Dial(srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer r4.Close()
	fmt.Printf("R4 served over TCP at %s\n\n", srv.Addr())

	// Heterogeneous links: R3 is behind a slow, high-latency path.
	links := map[string]netsim.Link{
		"R1": {Latency: 10 * time.Millisecond, BytesPerSec: 256 << 10, RequestOverhead: 5 * time.Millisecond},
		"R2": {Latency: 40 * time.Millisecond, BytesPerSec: 64 << 10, RequestOverhead: 20 * time.Millisecond},
		"R3": {Latency: 120 * time.Millisecond, BytesPerSec: 16 << 10, RequestOverhead: 60 * time.Millisecond},
		"R4": {Latency: 25 * time.Millisecond, BytesPerSec: 128 << 10, RequestOverhead: 10 * time.Millisecond},
	}

	m := core.New(schema)
	m.SetNetwork(netsim.NewNetwork(3))
	for _, src := range []source.Source{r1, r2, r3, r4} {
		if err := m.AddSourceLink(src, links[src.Name()]); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-3s %-16s semijoin support: %s\n", src.Name(), " ", src.Caps())
	}

	sql := `SELECT u1.ID FROM U u1, U u2
	        WHERE u1.ID = u2.ID AND u1.A1 < 51 AND u2.A2 < 501`
	fmt.Printf("\nquery:\n%s\n", sql)

	for _, algo := range []core.Algorithm{core.AlgoFilter, core.AlgoSJ, core.AlgoSJA, core.AlgoSJAPlus} {
		ans, err := m.Query(sql, core.Options{Algorithm: algo})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n--- %-7s %d answers, estimated %.3f s, measured %v, %d source queries ---\n",
			algo, ans.Items.Len(), ans.EstimatedCost, ans.Exec.TotalWork, ans.Exec.SourceQueries)
		fmt.Print(ans.Plan)
	}
}
