// DMV: the paper's running example (Figure 1 and the Section 1 query).
//
// Three state DMVs keep overlapping violation records. The fusion query
// looks for drivers with both a "driving under the influence" (dui) and a
// "speeding" (sp) violation, possibly recorded in different states. The
// example prints the relations, runs every optimization algorithm, and
// shows how the plans differ while all returning the paper's answer
// {J55, T21}.
//
// Run with: go run ./examples/dmv
package main

import (
	"fmt"
	"log"

	"fusionq/internal/core"
	"fusionq/internal/netsim"
	"fusionq/internal/workload"
)

func main() {
	sc := workload.DMV()

	fmt.Println("Figure 1 relations:")
	for j, rel := range sc.Relations {
		fmt.Printf("\nR%d:\n%s", j+1, rel)
	}

	m := core.New(sc.Schema)
	m.SetNetwork(netsim.NewNetwork(42))
	for _, src := range sc.Sources {
		if err := m.AddSourceLink(src, netsim.DefaultLink()); err != nil {
			log.Fatal(err)
		}
	}

	sql := `SELECT u1.L FROM U u1, U u2
	        WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp'`
	fmt.Printf("\nquery:\n%s\n", sql)

	for _, algo := range core.Algorithms() {
		ans, err := m.Query(sql, core.Options{Algorithm: algo})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n--- %-11s answer %s, estimated cost %.4f s, %d source queries, total work %v ---\n",
			algo, ans.Items, ans.EstimatedCost, ans.Exec.SourceQueries, ans.Exec.TotalWork)
		fmt.Print(ans.Plan)
	}

	// The two-phase follow-up of Section 1: fetch the matching drivers'
	// full violation records.
	ans, err := m.Query(sql, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	full, err := m.Fetch(ans.Items)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nphase two — full records of %s:\n%s", ans.Items, full)
}
