// Resilient: fusion queries over sources that fail the way real Internet
// sources do. Each wrapper is decorated with deterministic failure
// injection (timeouts, dropped connections); the mediator's retry policy
// re-issues the failed queries, and the execution trace shows where the
// extra work went. One source also supports Bloom-filter semijoins, the
// Bloomjoin extension the optimizer picks when shipping the running set is
// expensive.
//
// Run with: go run ./examples/resilient
package main

import (
	"fmt"
	"log"

	"fusionq/internal/bloom"
	"fusionq/internal/core"
	"fusionq/internal/exec"
	"fusionq/internal/netsim"
	"fusionq/internal/source"
	"fusionq/internal/stats"
	"fusionq/internal/workload"
)

func main() {
	sc, err := workload.Synth(workload.SynthConfig{
		Seed: 77, NumSources: 4, TuplesPerSource: 500, Universe: 300,
		Selectivity: []float64{0.04, 0.45},
	})
	if err != nil {
		log.Fatal(err)
	}

	m := core.New(sc.Schema)
	m.SetNetwork(netsim.NewNetwork(7))
	flakies := make([]*source.Flaky, len(sc.Sources))
	for j, raw := range sc.Sources {
		// 20% of queries to each source fail transiently.
		wrapped := raw
		if j == 0 {
			// R1 additionally accepts Bloom-filter semijoins.
			inner := raw.(*source.Wrapper)
			wrapped = source.NewWrapper(inner.Name(), source.NewRowBackend(sc.Relations[j]),
				source.Capabilities{NativeSemijoin: true, PassedBindings: true, BloomSemijoin: true})
		}
		flakies[j] = source.NewFlaky(wrapped, 0.2, int64(j))
		profile := stats.ProfileFromLink(wrapped.Name(), netsim.DefaultLink(), 8, stats.SupportOf(wrapped.Caps()))
		if wrapped.Caps().BloomSemijoin {
			profile.BloomBitsPerItem = bloom.DefaultBitsPerItem
		}
		if err := m.AddSource(flakies[j], profile); err != nil {
			log.Fatal(err)
		}
	}

	sql := `SELECT u1.ID FROM U u1, U u2
	        WHERE u1.ID = u2.ID AND u1.A1 < 41 AND u2.A2 < 451`

	// Without retries the first transient failure kills the query.
	if _, err := m.Query(sql, core.Options{Algorithm: core.AlgoSJA}); err != nil {
		fmt.Printf("without retries: %v\n\n", err)
	}

	// With a retry budget the mediator rides out the failures.
	ans, err := m.Query(sql, core.Options{Algorithm: core.AlgoSJA, Retries: 20, Trace: true})
	if err != nil {
		log.Fatal(err)
	}
	failures := 0
	for _, f := range flakies {
		failures += f.Failures()
	}
	fmt.Printf("with retries: %d answers despite %d injected failures\n", ans.Items.Len(), failures)
	fmt.Printf("plan (%s), %d source queries issued (including retried work)\n\n",
		ans.Plan.Class, ans.Exec.SourceQueries)
	fmt.Printf("trace:\n%s", exec.RenderTrace(ans.Exec.Trace))
}
