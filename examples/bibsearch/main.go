// Bibsearch: the bibliographic-search scenario the paper's introduction
// uses to motivate two-phase processing. Several digital libraries index
// overlapping sets of documents; records are wide (abstracts), so the
// search first identifies matching document ids (phase one, items only)
// and then fetches the full records of just the answers (phase two).
//
// The example contrasts the bytes moved by the two-phase pipeline against
// fetching full matching records for every condition up front.
//
// Run with: go run ./examples/bibsearch
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"fusionq/internal/cond"
	"fusionq/internal/core"
	"fusionq/internal/netsim"
	"fusionq/internal/relation"
	"fusionq/internal/source"
)

// libraries builds three overlapping bibliographic sources with wide
// abstract fields.
func libraries(schema *relation.Schema) map[string]*relation.Relation {
	type doc struct {
		id       string
		topic    string
		year     int64
		cites    int64
		abstract string
	}
	pad := func(s string) string { return s + strings.Repeat(" lorem-ipsum", 40) }
	docs := map[string][]doc{
		"ACM-DL": {
			{"doc-001", "databases", 1996, 120, pad("mediators for heterogeneous sources")},
			{"doc-002", "networks", 1995, 80, pad("routing in wide area networks")},
			{"doc-003", "databases", 1997, 45, pad("semijoin programs for distributed joins")},
			{"doc-007", "ai", 1994, 200, pad("resolution-based query planning")},
		},
		"CiteMirror": {
			{"doc-001", "databases", 1996, 118, pad("mediators for heterogeneous sources (mirror)")},
			{"doc-003", "databases", 1997, 52, pad("semijoin programs for distributed joins (mirror)")},
			{"doc-004", "databases", 1993, 300, pad("wrappers and query translation")},
			{"doc-005", "theory", 1996, 15, pad("complexity of containment")},
		},
		"UnivRepo": {
			{"doc-002", "networks", 1995, 85, pad("routing in wide area networks (preprint)")},
			{"doc-004", "databases", 1993, 290, pad("wrappers and query translation (preprint)")},
			{"doc-006", "databases", 1997, 60, pad("fusion queries over internet databases")},
			{"doc-007", "ai", 1994, 180, pad("resolution-based query planning (tech report)")},
		},
	}
	out := map[string]*relation.Relation{}
	for lib, ds := range docs {
		rel := relation.NewRelation(schema)
		for _, d := range ds {
			rel.MustInsert(
				relation.String(d.id), relation.String(d.topic),
				relation.Int(d.year), relation.Int(d.cites), relation.String(d.abstract),
			)
		}
		out[lib] = rel
	}
	return out
}

func main() {
	schema := relation.MustSchema("DocID",
		relation.Column{Name: "DocID", Kind: relation.KindString},
		relation.Column{Name: "Topic", Kind: relation.KindString},
		relation.Column{Name: "Year", Kind: relation.KindInt},
		relation.Column{Name: "Cites", Kind: relation.KindInt},
		relation.Column{Name: "Abstract", Kind: relation.KindString},
	)

	network := netsim.NewNetwork(7)
	m := core.New(schema)
	m.SetNetwork(network)
	for name, rel := range libraries(schema) {
		src := source.NewWrapper(name, source.NewRowBackend(rel), source.Capabilities{NativeSemijoin: true, PassedBindings: true})
		if err := m.AddSourceLink(src, netsim.DefaultLink()); err != nil {
			log.Fatal(err)
		}
	}

	// Documents that are database papers somewhere AND well cited
	// somewhere (the records may live in different libraries).
	sql := `SELECT d1.DocID FROM Docs d1, Docs d2
	        WHERE d1.DocID = d2.DocID
	          AND d1.Topic = 'databases' AND d2.Cites >= 50`
	fmt.Printf("query:\n%s\n\n", sql)

	// Phase one: items only. (SJA rather than SJA+ here: with such tiny
	// demo relations SJA+ would load the sources outright, which moves
	// whole records and would muddy the phase-one/phase-two comparison.)
	ans, err := m.Query(sql, core.Options{Algorithm: core.AlgoSJA})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase one answer: %s\n", ans.Items)
	fmt.Printf("plan:\n%s\n", ans.Plan)
	phase1 := network.Stats()
	fmt.Printf("phase one traffic: %s\n", phase1)

	// Phase two: fetch the full (wide) records of the answers only.
	full, err := m.Fetch(ans.Items)
	if err != nil {
		log.Fatal(err)
	}
	both := network.Stats()
	fmt.Printf("phase two fetched %d full records; total traffic now %s\n\n", full.Len(), both)

	// Contrast: a one-phase strategy ships full matching records for every
	// condition from every library.
	network.Reset()
	conds := []cond.Cond{
		cond.MustParse("Topic = 'databases'"),
		cond.MustParse("Cites >= 50"),
	}
	for _, c := range conds {
		for _, src := range m.Sources() {
			items, err := src.Select(context.Background(), c)
			if err != nil {
				log.Fatal(err)
			}
			if _, err := src.Fetch(context.Background(), items); err != nil {
				log.Fatal(err)
			}
		}
	}
	onePhase := network.Stats()
	fmt.Printf("one-phase traffic (full records per condition): %s\n", onePhase)
	fmt.Printf("two-phase moved %.1fx fewer bytes\n",
		float64(onePhase.TotalBytes)/float64(both.TotalBytes))
}
